package experiments

import (
	"sort"

	"mayacache/internal/metrics"
	"mayacache/internal/trace"
)

// ---------------------------------------------------------------- Fig 1

// Fig1Row reports the dead-block percentage of one benchmark on a
// single-core 2MB LLC, for the baseline and Mirage designs.
type Fig1Row struct {
	Bench        string
	Suite        string
	DeadBaseline float64 // percent
	DeadMirage   float64 // percent
}

// Fig1 reproduces Figure 1: the fraction of LLC data fills that are never
// reused, per benchmark, single-core with a 2MB LLC.
func Fig1(sc Scale) []Fig1Row {
	benches := append(trace.SpecMemIntensive(), trace.GapMemIntensive()...)
	rows := make([]Fig1Row, len(benches))
	parallelFor(len(benches), sc.Parallel, func(i int) {
		b := benches[i]
		base := runMix([]string{b}, NewLLC(DesignBaseline, LLCOptions{Cores: 1, Seed: sc.Seed}), sc)
		mir := runMix([]string{b}, NewLLC(DesignMirage, LLCOptions{Cores: 1, Seed: sc.Seed, FastHash: true}), sc)
		rows[i] = Fig1Row{
			Bench:        b,
			Suite:        trace.MustLookup(b).Suite,
			DeadBaseline: base.LLCStats.DeadBlockFraction() * 100,
			DeadMirage:   mir.LLCStats.DeadBlockFraction() * 100,
		}
	})
	return rows
}

// Fig1Average returns the mean dead-block percentage across rows.
func Fig1Average(rows []Fig1Row) (baseline, mirage float64) {
	bs := make([]float64, len(rows))
	ms := make([]float64, len(rows))
	for i, r := range rows {
		bs[i], ms[i] = r.DeadBaseline, r.DeadMirage
	}
	return metrics.Mean(bs), metrics.Mean(ms)
}

// ---------------------------------------------------------------- Fig 9

// Fig9Row is one homogeneous mix's normalized performance.
type Fig9Row struct {
	Bench      string
	Suite      string
	NormMirage float64 // weighted speedup vs baseline
	NormMaya   float64
	MPKIBase   float64
	MPKIMirage float64
	MPKIMaya   float64
}

// Fig9 reproduces Figure 9: 8-core homogeneous mixes, Maya and Mirage
// normalized to the non-secure baseline, plus the Table VII MPKI data.
func Fig9(sc Scale) []Fig9Row {
	benches := append(trace.SpecMemIntensive(), trace.GapMemIntensive()...)
	rows := make([]Fig9Row, len(benches))
	parallelFor(len(benches), sc.Parallel, func(i int) {
		b := benches[i]
		mix := homogeneous(b, 8)
		base := RunMixDesign(b, mix, DesignBaseline, sc)
		mir := RunMixDesign(b, mix, DesignMirage, sc)
		maya := RunMixDesign(b, mix, DesignMaya, sc)
		rows[i] = Fig9Row{
			Bench:      b,
			Suite:      trace.MustLookup(b).Suite,
			NormMirage: mir.WS / base.WS,
			NormMaya:   maya.WS / base.WS,
			MPKIBase:   base.MPKI,
			MPKIMirage: mir.MPKI,
			MPKIMaya:   maya.MPKI,
		}
	})
	return rows
}

// Fig9Summary returns per-suite geometric means of the normalized
// performance columns.
type Fig9Summary struct {
	Suite      string
	NormMirage float64
	NormMaya   float64
}

// SummarizeFig9 aggregates rows by suite ("SPEC", "GAP", "ALL").
func SummarizeFig9(rows []Fig9Row) []Fig9Summary {
	groups := map[string][][2]float64{}
	for _, r := range rows {
		groups[r.Suite] = append(groups[r.Suite], [2]float64{r.NormMirage, r.NormMaya})
		groups["ALL"] = append(groups["ALL"], [2]float64{r.NormMirage, r.NormMaya})
	}
	var out []Fig9Summary
	for _, suite := range []string{"SPEC", "GAP", "ALL"} {
		vals := groups[suite]
		if len(vals) == 0 {
			continue
		}
		mir := make([]float64, len(vals))
		may := make([]float64, len(vals))
		for i, v := range vals {
			mir[i], may[i] = v[0], v[1]
		}
		gm1, _ := metrics.GeoMean(mir)
		gm2, _ := metrics.GeoMean(may)
		out = append(out, Fig9Summary{Suite: suite, NormMirage: gm1, NormMaya: gm2})
	}
	return out
}

// ---------------------------------------------------------------- Fig 10

// Fig10Row is one heterogeneous mix's normalized performance.
type Fig10Row struct {
	Mix        string
	Bin        trace.MixBin
	NormMirage float64
	NormMaya   float64
	MPKIBase   float64
	MPKIMirage float64
	MPKIMaya   float64
}

// Fig10 reproduces Figure 10: the 21 heterogeneous mixes of Table VI.
func Fig10(sc Scale) []Fig10Row {
	mixes := trace.HeteroMixes()
	rows := make([]Fig10Row, len(mixes))
	parallelFor(len(mixes), sc.Parallel, func(i int) {
		m := mixes[i]
		base := RunMixDesign(m.Name, m.Benchmarks, DesignBaseline, sc)
		mir := RunMixDesign(m.Name, m.Benchmarks, DesignMirage, sc)
		maya := RunMixDesign(m.Name, m.Benchmarks, DesignMaya, sc)
		rows[i] = Fig10Row{
			Mix: m.Name, Bin: m.Bin,
			NormMirage: mir.WS / base.WS,
			NormMaya:   maya.WS / base.WS,
			MPKIBase:   base.MPKI,
			MPKIMirage: mir.MPKI,
			MPKIMaya:   maya.MPKI,
		}
	})
	return rows
}

// ---------------------------------------------------------------- Table VII

// Table7Row is one workload class's average LLC MPKI per design.
type Table7Row struct {
	Class            string
	Baseline, Mirage, Maya float64
}

// Table7 derives Table VII from Fig 9 and Fig 10 results.
func Table7(fig9 []Fig9Row, fig10 []Fig10Row) []Table7Row {
	var rows []Table7Row
	// Homogeneous average.
	var b, m, y []float64
	for _, r := range fig9 {
		b = append(b, r.MPKIBase)
		m = append(m, r.MPKIMirage)
		y = append(y, r.MPKIMaya)
	}
	rows = append(rows, Table7Row{"SPEC and GAP-RATE", metrics.Mean(b), metrics.Mean(m), metrics.Mean(y)})
	for _, bin := range []trace.MixBin{trace.BinLow, trace.BinMedium, trace.BinHigh} {
		var b, m, y []float64
		for _, r := range fig10 {
			if r.Bin != bin {
				continue
			}
			b = append(b, r.MPKIBase)
			m = append(m, r.MPKIMirage)
			y = append(y, r.MPKIMaya)
		}
		rows = append(rows, Table7Row{"HETERO " + string(bin), metrics.Mean(b), metrics.Mean(m), metrics.Mean(y)})
	}
	return rows
}

// ---------------------------------------------------------------- Fig 4

// Fig4Row reports normalized performance for one reuse-way configuration.
type Fig4Row struct {
	ReuseWays int
	NormWS    float64 // geometric mean over SPEC homogeneous mixes
}

// Fig4 reproduces Figure 4: Maya's performance as reuse ways per skew vary
// over {1, 3, 5, 7}, on SPEC homogeneous mixes, normalized to baseline.
// The data store is held at its default size, as in the paper.
func Fig4(sc Scale) []Fig4Row {
	benches := trace.SpecMemIntensive()
	ways := []int{1, 3, 5, 7}
	type cell struct{ norm float64 }
	grid := make([][]cell, len(ways))
	for i := range grid {
		grid[i] = make([]cell, len(benches))
	}
	// Baselines once per bench.
	baseWS := make([]float64, len(benches))
	parallelFor(len(benches), sc.Parallel, func(j int) {
		mix := homogeneous(benches[j], 8)
		baseWS[j] = RunMixDesign(benches[j], mix, DesignBaseline, sc).WS
	})
	for i, w := range ways {
		w := w
		parallelFor(len(benches), sc.Parallel, func(j int) {
			mix := homogeneous(benches[j], 8)
			llc := NewLLC(DesignMaya, LLCOptions{Cores: 8, Seed: sc.Seed, FastHash: true, ReuseWays: w})
			res := runMix(mix, llc, sc)
			ipcs := make([]float64, len(res.Cores))
			alone := make([]float64, len(res.Cores))
			for k, c := range res.Cores {
				ipcs[k] = c.IPC
				alone[k] = AloneIPC(benches[j], sc)
			}
			ws, _ := metrics.WeightedSpeedup(ipcs, alone)
			grid[i][j] = cell{norm: ws / baseWS[j]}
		})
	}
	rows := make([]Fig4Row, len(ways))
	for i, w := range ways {
		vals := make([]float64, len(benches))
		for j := range benches {
			vals[j] = grid[i][j].norm
		}
		gm, _ := metrics.GeoMean(vals)
		rows[i] = Fig4Row{ReuseWays: w, NormWS: gm}
	}
	return rows
}

// ---------------------------------------------------------------- Table XI

// Table11Row is one partitioning technique's overheads.
type Table11Row struct {
	Technique   string
	PerfDelta   float64 // percent vs baseline (negative = slowdown)
	StorageOver float64 // percent extra storage (from the paper's metadata accounting)
}

// Table11 reproduces Table XI: secure partitioning techniques on SPEC
// homogeneous mixes at 8 cores. Storage overheads are the published
// metadata costs (mask registers / color tables), which are not simulated.
func Table11(sc Scale) []Table11Row {
	benches := trace.SpecMemIntensive()
	kinds := []partitionSpec{
		{"Page coloring", "set", 0.5},
		{"DAWG", "way", 0.5},
		{"BCE", "flex", 2.0},
	}
	rows := make([]Table11Row, len(kinds))
	for i, k := range kinds {
		k := k
		norms := make([]float64, len(benches))
		parallelFor(len(benches), sc.Parallel, func(j int) {
			mix := homogeneous(benches[j], 8)
			base := RunMixDesign(benches[j], mix, DesignBaseline, sc)
			part := runMix(mix, newPartitionLLC(k.kind, 8, sc.Seed), sc)
			ipcs := make([]float64, len(part.Cores))
			alone := make([]float64, len(part.Cores))
			for c, cr := range part.Cores {
				ipcs[c] = cr.IPC
				alone[c] = AloneIPC(benches[j], sc)
			}
			ws, _ := metrics.WeightedSpeedup(ipcs, alone)
			norms[j] = ws / base.WS
		})
		gm, _ := metrics.GeoMean(norms)
		rows[i] = Table11Row{
			Technique:   k.name,
			PerfDelta:   (gm - 1) * 100,
			StorageOver: k.storagePct,
		}
	}
	return rows
}

type partitionSpec struct {
	name       string
	kind       string
	storagePct float64
}

// ---------------------------------------------------------------- sensitivity

// SensitivityRow is one point of the LLC-size / core-count sweeps.
type SensitivityRow struct {
	Label    string
	NormMaya float64
}

// LLCFittingSensitivity measures Maya on LLC-fitting benchmarks (Section
// V-B reports a 0.63% average loss).
func LLCFittingSensitivity(sc Scale) []SensitivityRow {
	benches := trace.LLCFitting()
	rows := make([]SensitivityRow, len(benches))
	parallelFor(len(benches), sc.Parallel, func(i int) {
		mix := homogeneous(benches[i], 8)
		base := RunMixDesign(benches[i], mix, DesignBaseline, sc)
		maya := RunMixDesign(benches[i], mix, DesignMaya, sc)
		rows[i] = SensitivityRow{Label: benches[i], NormMaya: maya.WS / base.WS}
	})
	return rows
}

// LLCSizeSensitivity sweeps the Maya data-store size via the DataScale
// knob (Section V-B evaluates 6MB to 96MB data stores; the scale factors
// here multiply the default 12MB). Tag stores scale proportionally, as in
// the paper.
func LLCSizeSensitivity(sc Scale, scales []float64) []SensitivityRow {
	if len(scales) == 0 {
		scales = []float64{0.5, 1.0, 2.0, 4.0}
	}
	benches := trace.SpecMemIntensive()
	rows := make([]SensitivityRow, len(scales))
	for i, f := range scales {
		f := f
		norms := make([]float64, len(benches))
		parallelFor(len(benches), sc.Parallel, func(j int) {
			mix := homogeneous(benches[j], 8)
			// The baseline scales with the same factor: a 0.5x Maya
			// (6MB) compares against a 0.5x baseline (8MB), matching
			// the paper's like-for-like sweep.
			scaledSets := nextPow2(int(float64(setsPerCore*8)*f + 0.5))
			baseLLC := newScaledBaseline(scaledSets, sc.Seed)
			base := RunMixLLC(benches[j], mix, DesignBaseline, baseLLC, sc)
			// Maya scales by set count so the way structure (and thus
			// the security argument) is preserved, as in the paper.
			llc := newScaledMaya(scaledSets, sc.Seed)
			res := RunMixLLC(benches[j], mix, DesignMaya, llc, sc)
			norms[j] = res.WS / base.WS
		})
		gm, _ := metrics.GeoMean(norms)
		rows[i] = SensitivityRow{
			Label:    fmtInt(int(12*f+0.5)) + "MB data store",
			NormMaya: gm,
		}
	}
	return rows
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// CoreCountSensitivity runs a representative mix at 8/16/32 cores,
// normalizing Maya to the like-for-like baseline.
func CoreCountSensitivity(sc Scale, coreCounts []int) []SensitivityRow {
	if len(coreCounts) == 0 {
		coreCounts = []int{8, 16, 32}
	}
	// Rotate through the memory-intensive benchmarks for the mix.
	pool := append(trace.SpecMemIntensive(), trace.GapMemIntensive()...)
	rows := make([]SensitivityRow, len(coreCounts))
	for i, n := range coreCounts {
		mix := make([]string, n)
		for j := range mix {
			mix[j] = pool[j%len(pool)]
		}
		base := RunMixDesign("cores", mix, DesignBaseline, sc)
		maya := RunMixDesign("cores", mix, DesignMaya, sc)
		rows[i] = SensitivityRow{
			Label:    fmtCores(n),
			NormMaya: maya.WS / base.WS,
		}
	}
	return rows
}

func fmtCores(n int) string {
	return fmtInt(n) + " cores"
}

func fmtInt(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// SortFig9 orders rows SPEC-first then by name, matching the paper's axis.
func SortFig9(rows []Fig9Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Suite != rows[j].Suite {
			return rows[i].Suite == "SPEC"
		}
		return rows[i].Bench < rows[j].Bench
	})
}
