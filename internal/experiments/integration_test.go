package experiments

import (
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/rng"
)

// Cross-design invariants: properties every LLC in the repository must
// share, exercised through the same interface the simulator uses.

func allLLCs(seed uint64) map[Design]cachemodel.LLC {
	out := map[Design]cachemodel.LLC{}
	for _, d := range []Design{DesignBaseline, DesignMirage, DesignMirageLite, DesignMaya, DesignMayaISO} {
		out[d] = NewLLC(d, LLCOptions{Cores: 1, Seed: seed, FastHash: true})
	}
	return out
}

func TestAllDesignsConvergeOnFittingWorkingSet(t *testing.T) {
	// 1000 hot lines fit every design's data store; after warmup every
	// design must serve them at near-100% hit rate.
	for d, c := range allLLCs(1) {
		r := rng.New(uint64(len(d)))
		for i := 0; i < 60_000; i++ {
			c.Access(cachemodel.Access{Line: uint64(r.Intn(1000)), Type: cachemodel.Read})
		}
		c.ResetStats()
		for i := 0; i < 20_000; i++ {
			c.Access(cachemodel.Access{Line: uint64(r.Intn(1000)), Type: cachemodel.Read})
		}
		if st := c.StatsSnapshot(); st.DataHitRate() < 0.98 {
			t.Errorf("%s: hit rate %.3f on a trivially fitting set", d, st.DataHitRate())
		}
	}
}

func TestSecureDesignsSeeNoSAEsUnderLoad(t *testing.T) {
	for _, d := range []Design{DesignMirage, DesignMaya, DesignMayaISO} {
		c := NewLLC(d, LLCOptions{Cores: 1, Seed: 2, FastHash: true})
		r := rng.New(7)
		for i := 0; i < 500_000; i++ {
			typ := cachemodel.Read
			if r.Bool(0.3) {
				typ = cachemodel.Writeback
			}
			c.Access(cachemodel.Access{Line: uint64(r.Uint32()), Type: typ})
		}
		if s := c.StatsSnapshot().SAEs; s != 0 {
			t.Errorf("%s: %d SAEs under random load", d, s)
		}
	}
}

func TestBaselineSeesSAEsUnderLoad(t *testing.T) {
	c := NewLLC(DesignBaseline, LLCOptions{Cores: 1, Seed: 3})
	r := rng.New(9)
	for i := 0; i < 200_000; i++ {
		c.Access(cachemodel.Access{Line: uint64(r.Uint32()), Type: cachemodel.Read})
	}
	if c.StatsSnapshot().SAEs == 0 {
		t.Fatal("conventional cache logged no SAEs under pressure")
	}
}

func TestAllDesignsFlushConsistency(t *testing.T) {
	for d, c := range allLLCs(4) {
		c.Access(cachemodel.Access{Line: 5, Type: cachemodel.Read, SDID: 1})
		c.Access(cachemodel.Access{Line: 5, Type: cachemodel.Read, SDID: 1}) // promote in Maya
		if ok := c.Flush(5, 1); !ok {
			t.Errorf("%s: flush of resident line failed", d)
			continue
		}
		if tag, _ := c.Probe(5, 1); tag {
			t.Errorf("%s: line resident after flush", d)
		}
		if c.Flush(5, 1) {
			t.Errorf("%s: double flush succeeded", d)
		}
	}
}

func TestAllDesignsDirtyWritebackEventually(t *testing.T) {
	for d, c := range allLLCs(5) {
		c.Access(cachemodel.Access{Line: 9, Type: cachemodel.Writeback})
		r := rng.New(11)
		saw := false
		for i := 0; i < 3_000_000 && !saw; i++ {
			res := c.Access(cachemodel.Access{Line: uint64(r.Uint32()), Type: cachemodel.Writeback})
			for _, w := range res.Writebacks {
				if w.Line == 9 {
					saw = true
				}
			}
		}
		if !saw {
			t.Errorf("%s: dirty line never written back to memory", d)
		}
	}
}

func TestLookupPenalties(t *testing.T) {
	want := map[Design]int{
		DesignBaseline: 0, DesignMirage: 4, DesignMirageLite: 4,
		DesignMaya: 4, DesignMayaISO: 4,
	}
	for d, c := range allLLCs(6) {
		if p := c.LookupPenalty(); p != want[d] {
			t.Errorf("%s: LookupPenalty %d, want %d", d, p, want[d])
		}
	}
}
