package experiments

import (
	"context"
	"reflect"
	"testing"

	"mayacache/internal/buckets"
)

// secSpec is a reduced-scale spec for the security runners.
func secSpec(shards int) SecuritySpec {
	return SecuritySpec{Buckets: 256, Iters: 60_000, Seed: 7, Shards: shards, Workers: 2}
}

// TestFig6OneShardMatchesSerial pins the compatibility contract at the
// experiment layer: a one-shard Fig6 run reproduces the historical serial
// capacity sweep statistic for statistic.
func TestFig6OneShardMatchesSerial(t *testing.T) {
	spec := secSpec(1)
	points, err := Fig6(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig6Capacities) {
		t.Fatalf("%d points, want %d", len(points), len(Fig6Capacities))
	}
	for _, p := range points {
		cfg := buckets.MayaDefault(spec.Buckets, spec.Seed)
		cfg.Capacity = p.Capacity
		m := buckets.New(cfg)
		m.Run(spec.Iters)
		if p.Result.Iterations != m.Iterations() || p.Result.Spills != m.Spills() {
			t.Fatalf("capacity %d: sharded %v != serial iters=%d spills=%d",
				p.Capacity, p.Result, m.Iterations(), m.Spills())
		}
	}
}

// TestFig6FlattenEquivalence checks the capacity x shard flattening is
// invisible: each capacity point equals a standalone RunSharded at that
// capacity, whatever the pool width.
func TestFig6FlattenEquivalence(t *testing.T) {
	spec := secSpec(4)
	var want []Fig6Point
	for _, workers := range []int{1, 3} {
		s := spec
		s.Workers = workers
		points, err := Fig6(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = points
			for _, p := range points {
				cfg := buckets.MayaDefault(spec.Buckets, spec.Seed)
				cfg.Capacity = p.Capacity
				solo, serr := buckets.RunSharded(context.Background(), buckets.ShardedRun{
					Config: cfg, Iters: spec.Iters, Shards: spec.Shards, Workers: 1,
				})
				if serr != nil {
					t.Fatal(serr)
				}
				if !reflect.DeepEqual(p.Result, solo) {
					t.Fatalf("capacity %d: flattened result differs from standalone RunSharded", p.Capacity)
				}
			}
			continue
		}
		if !reflect.DeepEqual(points, want) {
			t.Fatalf("workers=%d: Fig6 results differ from workers=1", workers)
		}
	}
}

// TestFig7OneShardMatchesSerial pins the Fig 7 histogram path against the
// serial chunked Run+SampleHistogram cadence.
func TestFig7OneShardMatchesSerial(t *testing.T) {
	spec := secSpec(1)
	res, err := Fig7(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	m := buckets.New(buckets.MayaDefault(spec.Buckets, spec.Seed))
	chunk := spec.Iters / Fig7Samples
	if chunk == 0 {
		chunk = 1
	}
	for i := 0; i < Fig7Samples; i++ {
		m.Run(chunk)
		m.SampleHistogram()
	}
	if !reflect.DeepEqual(res.Histogram(), m.Histogram()) {
		t.Fatal("one-shard Fig7 histogram differs from serial cadence")
	}
}

// TestNonDecoupledOneShardMatchesSerial pins the Section VI first-spill
// measurement against the serial RunUntilSpill.
func TestNonDecoupledOneShardMatchesSerial(t *testing.T) {
	spec := SecuritySpec{Buckets: 256, Iters: 200_000, Seed: 9, Shards: 1, Workers: 1}
	res, err := NonDecoupled(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	m := buckets.New(buckets.ThresholdDefault(spec.Buckets, spec.Seed))
	n, spilled := m.RunUntilSpill(spec.Iters)
	if res.Spilled != spilled {
		t.Fatalf("spilled %v, serial %v", res.Spilled, spilled)
	}
	if spilled && res.FirstSpillIter != n {
		t.Fatalf("first spill at %d, serial at %d", res.FirstSpillIter, n)
	}
}

// TestFig6RejectsBadSpec covers validation pass-through at this layer.
func TestFig6RejectsBadSpec(t *testing.T) {
	spec := secSpec(1)
	spec.Iters = 0
	if _, err := Fig6(context.Background(), spec); err == nil {
		t.Fatal("zero-iteration Fig6 accepted")
	}
}

// TestMultiSeedStreamSeeds: the Stream derivation changes the per-seed
// seeds (a different, deterministic experiment) while the default keeps
// the historical consecutive scheme.
func TestMultiSeedStreamSeeds(t *testing.T) {
	sc := TinyScale()
	for i := 0; i < 3; i++ {
		if got, want := sc.seedFor(i), sc.Seed+uint64(i); got != want {
			t.Fatalf("legacy seedFor(%d) = %d, want %d", i, got, want)
		}
	}
	sc.StreamSeeds = true
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		s := sc.seedFor(i)
		if seen[s] {
			t.Fatalf("stream seedFor collision at %d", i)
		}
		seen[s] = true
	}
	a, err := RunMixDesignSeedsCtx(context.Background(), "xz", []string{"xz"}, DesignBaseline, sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMixDesignSeedsCtx(context.Background(), "xz", []string{"xz"}, DesignBaseline, sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stream-seeded sweep not deterministic: %+v vs %+v", a, b)
	}
}

// TestMultiSeedCancellation: a cancelled context aborts the sweep.
func TestMultiSeedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMixDesignSeedsCtx(ctx, "xz", []string{"xz"}, DesignBaseline, TinyScale(), 4); err == nil {
		t.Fatal("cancelled multi-seed sweep returned nil error")
	}
}
