package experiments

import (
	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/partition"
)

// newPartitionLLC builds a partitioned LLC for Table XI, kind one of
// "way", "set", "flex".
func newPartitionLLC(kind string, cores int, seed uint64) cachemodel.LLC {
	var k partition.Kind
	switch kind {
	case "way":
		k = partition.WayPartition
	case "set":
		k = partition.SetPartition
	case "flex":
		k = partition.FlexSetPartition
	default:
		panic("experiments: unknown partition kind " + kind)
	}
	return partition.New(partition.Config{
		Sets:        setsPerCore * cores,
		Ways:        16,
		Domains:     cores,
		Kind:        k,
		Replacement: baseline.SRRIP,
		Seed:        seed,
	})
}
