package experiments

import (
	"testing"

	"mayacache/internal/trace"
)

// tiny keeps experiment tests fast; shapes are asserted loosely.
func tiny() Scale {
	return Scale{WarmupInstr: 200_000, ROIInstr: 100_000, Seed: 1, Parallel: true}
}

func TestNewLLCAllDesigns(t *testing.T) {
	for _, d := range []Design{DesignBaseline, DesignMirage, DesignMirageLite, DesignMaya, DesignMayaISO} {
		llc := NewLLC(d, LLCOptions{Cores: 1, Seed: 1, FastHash: true})
		if llc == nil {
			t.Fatalf("%s: nil LLC", d)
		}
		g := llc.Geometry()
		if g.DataEntries <= 0 {
			t.Fatalf("%s: bad geometry %+v", d, g)
		}
	}
}

func TestNewLLCGeometryScaling(t *testing.T) {
	one := NewLLC(DesignMaya, LLCOptions{Cores: 1, Seed: 1, FastHash: true}).Geometry()
	eight := NewLLC(DesignMaya, LLCOptions{Cores: 8, Seed: 1, FastHash: true}).Geometry()
	if eight.DataEntries != 8*one.DataEntries {
		t.Fatalf("data entries do not scale with cores: %d vs 8x%d", eight.DataEntries, one.DataEntries)
	}
	// 8-core Maya must be the paper's 192K entries (12MB).
	if eight.DataEntries != 196608 {
		t.Fatalf("8-core Maya data entries = %d, want 196608", eight.DataEntries)
	}
}

func TestMayaOptionOverrides(t *testing.T) {
	g := NewLLC(DesignMaya, LLCOptions{Cores: 1, Seed: 1, FastHash: true, ReuseWays: 7, InvalidWays: 5}).Geometry()
	if g.WaysPerSkew != 6+7+5 {
		t.Fatalf("ways per skew = %d, want 18", g.WaysPerSkew)
	}
}

func TestRunMixDesignProducesWS(t *testing.T) {
	sc := tiny()
	res := RunMixDesign("m", []string{"xz", "xz"}, DesignBaseline, sc)
	if res.WS <= 0 || res.WS > 2.1 {
		t.Fatalf("weighted speedup %v out of range for 2 cores", res.WS)
	}
	if res.MPKI < 0 {
		t.Fatalf("negative MPKI")
	}
}

func TestAloneIPCMemoized(t *testing.T) {
	sc := tiny()
	a := AloneIPC("xz", sc)
	b := AloneIPC("xz", sc)
	if a != b {
		t.Fatalf("memoized alone IPC differs: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("alone IPC %v", a)
	}
}

func TestFig1ShapesAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	sc := tiny()
	rows := Fig1(sc)
	if len(rows) != 20 {
		t.Fatalf("%d Fig 1 rows, want 20", len(rows))
	}
	ab, _ := Fig1Average(rows)
	// The paper's headline observation: most LLC fills are dead.
	if ab < 60 {
		t.Fatalf("baseline average dead%% = %.1f, expected the >60%% regime even at tiny scale", ab)
	}
}

func TestSummarizeFig9(t *testing.T) {
	rows := []Fig9Row{
		{Bench: "a", Suite: "SPEC", NormMirage: 1.0, NormMaya: 1.1},
		{Bench: "b", Suite: "GAP", NormMirage: 0.9, NormMaya: 1.0},
	}
	sums := SummarizeFig9(rows)
	if len(sums) != 3 { // SPEC, GAP, ALL
		t.Fatalf("%d summaries", len(sums))
	}
	for _, s := range sums {
		if s.NormMaya <= 0 {
			t.Fatalf("bad summary %+v", s)
		}
	}
}

func TestTable7Aggregation(t *testing.T) {
	fig9 := []Fig9Row{{Bench: "a", Suite: "SPEC", MPKIBase: 10, MPKIMirage: 9, MPKIMaya: 11}}
	fig10 := []Fig10Row{
		{Mix: "M1", Bin: trace.BinLow, MPKIBase: 8, MPKIMirage: 8, MPKIMaya: 9},
		{Mix: "M15", Bin: trace.BinHigh, MPKIBase: 21, MPKIMirage: 21, MPKIMaya: 22},
	}
	rows := Table7(fig9, fig10)
	if len(rows) != 4 {
		t.Fatalf("%d Table VII rows, want 4", len(rows))
	}
	if rows[0].Baseline != 10 {
		t.Fatalf("homogeneous baseline MPKI %v", rows[0].Baseline)
	}
}

func TestPartitionLLCKinds(t *testing.T) {
	for _, k := range []string{"way", "set", "flex"} {
		llc := newPartitionLLC(k, 8, 1)
		if llc == nil {
			t.Fatalf("%s: nil", k)
		}
	}
}

func TestSortFig9(t *testing.T) {
	rows := []Fig9Row{
		{Bench: "pr", Suite: "GAP"},
		{Bench: "mcf", Suite: "SPEC"},
		{Bench: "bc", Suite: "GAP"},
	}
	SortFig9(rows)
	if rows[0].Suite != "SPEC" || rows[1].Bench != "bc" {
		t.Fatalf("bad order: %+v", rows)
	}
}

func TestRunMixDesignSeeds(t *testing.T) {
	sc := tiny()
	res := RunMixDesignSeeds("xz", []string{"xz", "xz"}, DesignBaseline, sc, 3)
	if res.WS.N != 3 {
		t.Fatalf("N = %d, want 3", res.WS.N)
	}
	if res.WS.Mean <= 0 {
		t.Fatalf("mean WS %v", res.WS.Mean)
	}
	if res.WS.CI95 < 0 {
		t.Fatalf("negative CI %v", res.WS.CI95)
	}
}

func TestNormalizedAcrossSeeds(t *testing.T) {
	sc := tiny()
	st := NormalizedAcrossSeeds("lbm", []string{"lbm", "lbm"}, DesignMaya, sc, 2)
	if st.N != 2 || st.Mean <= 0 {
		t.Fatalf("bad stats %+v", st)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := summarize([]float64{5})
	if s.Mean != 5 || s.CI95 != 0 || s.Stddev != 0 {
		t.Fatalf("singleton stats %+v", s)
	}
}
