package experiments

import (
	"context"
	"fmt"

	"mayacache/internal/cachemodel"
	"mayacache/internal/cachesim"
	"mayacache/internal/harness"
	"mayacache/internal/metrics"
	"mayacache/internal/snapshot"
	"mayacache/internal/trace"
)

// Harness-routed sweeps: every figure/table of the evaluation expressed
// as a set of independent cells executed through harness.RunCells. Each
// cell key embeds the benchmark/configuration AND the scale (warmup, ROI,
// seed), so a checkpoint taken at one scale can never satisfy a lookup at
// another. The *Sweep functions return their rows plus a completeness
// mask: ok[i] is false when any cell feeding row i failed or was
// cancelled, and the drivers render such rows as FAILED while aggregates
// use only complete rows.

// scaleKey renders the scale portion of a cell key.
func scaleKey(sc Scale) string {
	return fmt.Sprintf("w=%d|roi=%d|seed=%d", sc.WarmupInstr, sc.ROIInstr, sc.Seed)
}

// runMixCtx simulates one workload assignment under one LLC, honoring
// ctx cancellation and returning trace/construction failures as errors.
// sub names this sub-run within its sweep cell ("mix|<design>",
// "alone|<bench>"); when the harness attached a snapshot.Cell to ctx the
// run goes through the checkpointing path of cachesim.Run, so completed
// sub-runs are served from the cell record, an interrupted one resumes
// mid-simulation, and deadline stops persist state before returning
// snapshot.ErrStopped.
func runMixCtx(ctx context.Context, sub string, benchNames []string, llc cachemodel.LLC, sc Scale) (cachesim.Results, error) {
	gens := make([]trace.Generator, len(benchNames))
	for i, b := range benchNames {
		p, err := trace.Lookup(b)
		if err != nil {
			return cachesim.Results{}, err
		}
		g, err := trace.NewGenerator(p, i, sc.Seed)
		if err != nil {
			return cachesim.Results{}, err
		}
		gens[i] = g
	}
	sys := cachesim.New(cachesim.Config{
		Cores: len(benchNames),
		Core:  cachesim.DefaultCoreParams(),
		LLC:   llc,
		DRAM:  dramFor(len(benchNames)),
		Seed:  sc.Seed,
	}, gens)
	return cachesim.Run(ctx, sys, cachesim.RunSpec{
		Warmup:      sc.WarmupInstr,
		ROI:         sc.ROIInstr,
		Cell:        snapshot.CellFrom(ctx),
		Sub:         sub,
		Parallelism: sc.IntraParallelism,
	})
}

// AloneIPCCtx is AloneIPC under a context; failed computations are not
// memoized.
func AloneIPCCtx(ctx context.Context, bench string, sc Scale) (float64, error) {
	k := aloneKey{bench, sc.WarmupInstr, sc.ROIInstr, sc.Seed}
	aloneMu.Lock()
	v, ok := aloneCache[k]
	aloneMu.Unlock()
	if ok {
		return v, nil
	}
	llc, err := NewLLCChecked(DesignBaseline, LLCOptions{Cores: 1, Seed: sc.Seed})
	if err != nil {
		return 0, err
	}
	res, err := runMixCtx(ctx, "alone|"+bench, []string{bench}, llc, sc)
	if err != nil {
		return 0, err
	}
	v = res.Cores[0].IPC
	aloneMu.Lock()
	aloneCache[k] = v
	aloneMu.Unlock()
	return v, nil
}

// RunMixDesignCtx is RunMixDesign under a context, returning errors
// instead of panicking.
func RunMixDesignCtx(ctx context.Context, mixName string, benchNames []string, d Design, sc Scale) (MixResult, error) {
	llc, err := NewLLCChecked(d, LLCOptions{Cores: len(benchNames), Seed: sc.Seed, FastHash: true})
	if err != nil {
		return MixResult{}, err
	}
	return RunMixLLCCtx(ctx, mixName, benchNames, d, llc, sc)
}

// RunMixLLCCtx is RunMixLLC under a context, returning errors instead of
// panicking.
func RunMixLLCCtx(ctx context.Context, mixName string, benchNames []string, d Design, llc cachemodel.LLC, sc Scale) (MixResult, error) {
	res, err := runMixCtx(ctx, "mix|"+llc.Name(), benchNames, llc, sc)
	if err != nil {
		return MixResult{}, err
	}
	ipcs := make([]float64, len(res.Cores))
	alone := make([]float64, len(res.Cores))
	for i, c := range res.Cores {
		ipcs[i] = c.IPC
		alone[i], err = AloneIPCCtx(ctx, benchNames[i], sc)
		if err != nil {
			return MixResult{}, err
		}
	}
	ws, err := metrics.WeightedSpeedup(ipcs, alone)
	if err != nil {
		return MixResult{}, fmt.Errorf("experiments: %w", err)
	}
	return MixResult{
		Mix: mixName, Design: d, WS: ws, MPKI: res.MPKI(),
		IPCs: ipcs, LLCStats: res.LLCStats,
	}, nil
}

// Fig1Sweep is Fig1 routed through the harness: one cell per benchmark.
func Fig1Sweep(ctx context.Context, r *harness.Runner, sc Scale) ([]Fig1Row, []bool, error) {
	benches := append(trace.SpecMemIntensive(), trace.GapMemIntensive()...)
	keys := make([]string, len(benches))
	for i, b := range benches {
		keys[i] = "bench=" + b + "|" + scaleKey(sc)
	}
	rows, ok, err := harness.RunCells(ctx, r, "fig1", keys, func(cctx context.Context, i int) (Fig1Row, error) {
		b := benches[i]
		baseLLC, err := NewLLCChecked(DesignBaseline, LLCOptions{Cores: 1, Seed: sc.Seed})
		if err != nil {
			return Fig1Row{}, err
		}
		base, err := runMixCtx(cctx, "mix|"+baseLLC.Name(), []string{b}, baseLLC, sc)
		if err != nil {
			return Fig1Row{}, err
		}
		mirLLC, err := NewLLCChecked(DesignMirage, LLCOptions{Cores: 1, Seed: sc.Seed, FastHash: true})
		if err != nil {
			return Fig1Row{}, err
		}
		mir, err := runMixCtx(cctx, "mix|"+mirLLC.Name(), []string{b}, mirLLC, sc)
		if err != nil {
			return Fig1Row{}, err
		}
		return Fig1Row{
			Bench:        b,
			Suite:        trace.MustLookup(b).Suite,
			DeadBaseline: base.LLCStats.DeadBlockFraction() * 100,
			DeadMirage:   mir.LLCStats.DeadBlockFraction() * 100,
		}, nil
	})
	// Identify failed rows so drivers can label them.
	for i := range rows {
		if !ok[i] {
			rows[i].Bench = benches[i]
			rows[i].Suite = trace.MustLookup(benches[i]).Suite
		}
	}
	return rows, ok, err
}

// Fig9Sweep is Fig9 routed through the harness: one cell per benchmark,
// each simulating the three designs on the 8-core homogeneous mix.
func Fig9Sweep(ctx context.Context, r *harness.Runner, sc Scale) ([]Fig9Row, []bool, error) {
	benches := append(trace.SpecMemIntensive(), trace.GapMemIntensive()...)
	keys := make([]string, len(benches))
	for i, b := range benches {
		keys[i] = "bench=" + b + "|" + scaleKey(sc)
	}
	rows, ok, err := harness.RunCells(ctx, r, "fig9", keys, func(cctx context.Context, i int) (Fig9Row, error) {
		b := benches[i]
		mix := homogeneous(b, 8)
		base, err := RunMixDesignCtx(cctx, b, mix, DesignBaseline, sc)
		if err != nil {
			return Fig9Row{}, err
		}
		mir, err := RunMixDesignCtx(cctx, b, mix, DesignMirage, sc)
		if err != nil {
			return Fig9Row{}, err
		}
		maya, err := RunMixDesignCtx(cctx, b, mix, DesignMaya, sc)
		if err != nil {
			return Fig9Row{}, err
		}
		return Fig9Row{
			Bench:      b,
			Suite:      trace.MustLookup(b).Suite,
			NormMirage: mir.WS / base.WS,
			NormMaya:   maya.WS / base.WS,
			MPKIBase:   base.MPKI,
			MPKIMirage: mir.MPKI,
			MPKIMaya:   maya.MPKI,
		}, nil
	})
	for i := range rows {
		if !ok[i] {
			rows[i].Bench = benches[i]
			rows[i].Suite = trace.MustLookup(benches[i]).Suite
		}
	}
	return rows, ok, err
}

// Fig10Sweep is Fig10 routed through the harness: one cell per
// heterogeneous mix.
func Fig10Sweep(ctx context.Context, r *harness.Runner, sc Scale) ([]Fig10Row, []bool, error) {
	mixes := trace.HeteroMixes()
	keys := make([]string, len(mixes))
	for i, m := range mixes {
		keys[i] = "mix=" + m.Name + "|" + scaleKey(sc)
	}
	rows, ok, err := harness.RunCells(ctx, r, "fig10", keys, func(cctx context.Context, i int) (Fig10Row, error) {
		m := mixes[i]
		base, err := RunMixDesignCtx(cctx, m.Name, m.Benchmarks, DesignBaseline, sc)
		if err != nil {
			return Fig10Row{}, err
		}
		mir, err := RunMixDesignCtx(cctx, m.Name, m.Benchmarks, DesignMirage, sc)
		if err != nil {
			return Fig10Row{}, err
		}
		maya, err := RunMixDesignCtx(cctx, m.Name, m.Benchmarks, DesignMaya, sc)
		if err != nil {
			return Fig10Row{}, err
		}
		return Fig10Row{
			Mix: m.Name, Bin: m.Bin,
			NormMirage: mir.WS / base.WS,
			NormMaya:   maya.WS / base.WS,
			MPKIBase:   base.MPKI,
			MPKIMirage: mir.MPKI,
			MPKIMaya:   maya.MPKI,
		}, nil
	})
	for i := range rows {
		if !ok[i] {
			rows[i].Mix = mixes[i].Name
			rows[i].Bin = mixes[i].Bin
		}
	}
	return rows, ok, err
}

// Fig4Sweep is Fig4 routed through the harness in two phases: baseline
// weighted speedups (one cell per benchmark), then raw Maya weighted
// speedups (one cell per reuse-way x benchmark). Normalization happens
// at aggregation, so a failed baseline only degrades the rows that need
// it. ok[i] is true when every cell feeding row i completed.
func Fig4Sweep(ctx context.Context, r *harness.Runner, sc Scale) ([]Fig4Row, []bool, error) {
	benches := trace.SpecMemIntensive()
	ways := []int{1, 3, 5, 7}

	baseKeys := make([]string, len(benches))
	for j, b := range benches {
		baseKeys[j] = "bench=" + b + "|" + scaleKey(sc)
	}
	baseWS, baseOK, err := harness.RunCells(ctx, r, "fig4-base", baseKeys, func(cctx context.Context, j int) (float64, error) {
		res, rerr := RunMixDesignCtx(cctx, benches[j], homogeneous(benches[j], 8), DesignBaseline, sc)
		if rerr != nil {
			return 0, rerr
		}
		return res.WS, nil
	})
	if err != nil {
		return nil, nil, err
	}

	keys := make([]string, 0, len(ways)*len(benches))
	for _, w := range ways {
		for _, b := range benches {
			keys = append(keys, fmt.Sprintf("rw=%d|bench=%s|%s", w, b, scaleKey(sc)))
		}
	}
	raw, rawOK, err := harness.RunCells(ctx, r, "fig4", keys, func(cctx context.Context, k int) (float64, error) {
		w, b := ways[k/len(benches)], benches[k%len(benches)]
		llc, rerr := NewLLCChecked(DesignMaya, LLCOptions{Cores: 8, Seed: sc.Seed, FastHash: true, ReuseWays: w})
		if rerr != nil {
			return 0, rerr
		}
		res, rerr := RunMixLLCCtx(cctx, b, homogeneous(b, 8), DesignMaya, llc, sc)
		if rerr != nil {
			return 0, rerr
		}
		return res.WS, nil
	})
	if err != nil {
		return nil, nil, err
	}

	rows := make([]Fig4Row, len(ways))
	ok := make([]bool, len(ways))
	for i, w := range ways {
		var norms []float64
		complete := true
		for j := range benches {
			k := i*len(benches) + j
			if baseOK[j] && rawOK[k] && baseWS[j] > 0 {
				norms = append(norms, raw[k]/baseWS[j])
			} else {
				complete = false
			}
		}
		gm := 0.0
		if len(norms) > 0 {
			gm, _ = metrics.GeoMean(norms)
		}
		rows[i] = Fig4Row{ReuseWays: w, NormWS: gm}
		ok[i] = complete
	}
	return rows, ok, nil
}

// Table11Sweep is Table11 routed through the harness: one cell per
// (technique, benchmark) normalized weighted speedup, aggregated per
// technique.
func Table11Sweep(ctx context.Context, r *harness.Runner, sc Scale) ([]Table11Row, []bool, error) {
	benches := trace.SpecMemIntensive()
	kinds := []partitionSpec{
		{"Page coloring", "set", 0.5},
		{"DAWG", "way", 0.5},
		{"BCE", "flex", 2.0},
	}
	keys := make([]string, 0, len(kinds)*len(benches))
	for _, k := range kinds {
		for _, b := range benches {
			keys = append(keys, fmt.Sprintf("tech=%s|bench=%s|%s", k.kind, b, scaleKey(sc)))
		}
	}
	norms, normOK, err := harness.RunCells(ctx, r, "table11", keys, func(cctx context.Context, c int) (float64, error) {
		k, b := kinds[c/len(benches)], benches[c%len(benches)]
		mix := homogeneous(b, 8)
		base, rerr := RunMixDesignCtx(cctx, b, mix, DesignBaseline, sc)
		if rerr != nil {
			return 0, rerr
		}
		part, rerr := RunMixLLCCtx(cctx, b, mix, DesignBaseline, newPartitionLLC(k.kind, 8, sc.Seed), sc)
		if rerr != nil {
			return 0, rerr
		}
		return part.WS / base.WS, nil
	})
	if err != nil {
		return nil, nil, err
	}
	rows := make([]Table11Row, len(kinds))
	ok := make([]bool, len(kinds))
	for i, k := range kinds {
		var vals []float64
		complete := true
		for j := range benches {
			if normOK[i*len(benches)+j] {
				vals = append(vals, norms[i*len(benches)+j])
			} else {
				complete = false
			}
		}
		gm := 1.0
		if len(vals) > 0 {
			gm, _ = metrics.GeoMean(vals)
		}
		rows[i] = Table11Row{
			Technique:   k.name,
			PerfDelta:   (gm - 1) * 100,
			StorageOver: k.storagePct,
		}
		ok[i] = complete
	}
	return rows, ok, nil
}

// FittingSweep is LLCFittingSensitivity routed through the harness: one
// cell per LLC-fitting benchmark.
func FittingSweep(ctx context.Context, r *harness.Runner, sc Scale) ([]SensitivityRow, []bool, error) {
	benches := trace.LLCFitting()
	keys := make([]string, len(benches))
	for i, b := range benches {
		keys[i] = "bench=" + b + "|" + scaleKey(sc)
	}
	rows, ok, err := harness.RunCells(ctx, r, "fitting", keys, func(cctx context.Context, i int) (SensitivityRow, error) {
		mix := homogeneous(benches[i], 8)
		base, err := RunMixDesignCtx(cctx, benches[i], mix, DesignBaseline, sc)
		if err != nil {
			return SensitivityRow{}, err
		}
		maya, err := RunMixDesignCtx(cctx, benches[i], mix, DesignMaya, sc)
		if err != nil {
			return SensitivityRow{}, err
		}
		return SensitivityRow{Label: benches[i], NormMaya: maya.WS / base.WS}, nil
	})
	for i := range rows {
		if !ok[i] {
			rows[i].Label = benches[i]
		}
	}
	return rows, ok, err
}

// CoreCountSweep is CoreCountSensitivity routed through the harness: one
// cell per core count.
func CoreCountSweep(ctx context.Context, r *harness.Runner, sc Scale, coreCounts []int) ([]SensitivityRow, []bool, error) {
	if len(coreCounts) == 0 {
		coreCounts = []int{8, 16, 32}
	}
	pool := append(trace.SpecMemIntensive(), trace.GapMemIntensive()...)
	keys := make([]string, len(coreCounts))
	for i, n := range coreCounts {
		keys[i] = fmt.Sprintf("cores=%d|%s", n, scaleKey(sc))
	}
	rows, ok, err := harness.RunCells(ctx, r, "cores", keys, func(cctx context.Context, i int) (SensitivityRow, error) {
		n := coreCounts[i]
		mix := make([]string, n)
		for j := range mix {
			mix[j] = pool[j%len(pool)]
		}
		base, err := RunMixDesignCtx(cctx, "cores", mix, DesignBaseline, sc)
		if err != nil {
			return SensitivityRow{}, err
		}
		maya, err := RunMixDesignCtx(cctx, "cores", mix, DesignMaya, sc)
		if err != nil {
			return SensitivityRow{}, err
		}
		return SensitivityRow{Label: fmtCores(n), NormMaya: maya.WS / base.WS}, nil
	})
	for i := range rows {
		if !ok[i] {
			rows[i].Label = fmtCores(coreCounts[i])
		}
	}
	return rows, ok, err
}

// LLCSizeSweep is LLCSizeSensitivity routed through the harness: one cell
// per (size factor, benchmark), aggregated per factor.
func LLCSizeSweep(ctx context.Context, r *harness.Runner, sc Scale, scales []float64) ([]SensitivityRow, []bool, error) {
	if len(scales) == 0 {
		scales = []float64{0.5, 1.0, 2.0, 4.0}
	}
	benches := trace.SpecMemIntensive()
	keys := make([]string, 0, len(scales)*len(benches))
	for _, f := range scales {
		for _, b := range benches {
			keys = append(keys, fmt.Sprintf("f=%g|bench=%s|%s", f, b, scaleKey(sc)))
		}
	}
	norms, normOK, err := harness.RunCells(ctx, r, "llcsize", keys, func(cctx context.Context, c int) (float64, error) {
		f, b := scales[c/len(benches)], benches[c%len(benches)]
		mix := homogeneous(b, 8)
		scaledSets := nextPow2(int(float64(setsPerCore*8)*f + 0.5))
		base, rerr := RunMixLLCCtx(cctx, b, mix, DesignBaseline, newScaledBaseline(scaledSets, sc.Seed), sc)
		if rerr != nil {
			return 0, rerr
		}
		res, rerr := RunMixLLCCtx(cctx, b, mix, DesignMaya, newScaledMaya(scaledSets, sc.Seed), sc)
		if rerr != nil {
			return 0, rerr
		}
		return res.WS / base.WS, nil
	})
	if err != nil {
		return nil, nil, err
	}
	rows := make([]SensitivityRow, len(scales))
	ok := make([]bool, len(scales))
	for i, f := range scales {
		var vals []float64
		complete := true
		for j := range benches {
			if normOK[i*len(benches)+j] {
				vals = append(vals, norms[i*len(benches)+j])
			} else {
				complete = false
			}
		}
		gm := 0.0
		if len(vals) > 0 {
			gm, _ = metrics.GeoMean(vals)
		}
		rows[i] = SensitivityRow{
			Label:    fmtInt(int(12*f+0.5)) + "MB data store",
			NormMaya: gm,
		}
		ok[i] = complete
	}
	return rows, ok, nil
}
