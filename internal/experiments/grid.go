package experiments

import (
	"context"
	"fmt"

	"mayacache/internal/cachesim"
)

// The grid cell is the unit of work the distributed fleet schedules: one
// (design, benchmark, core count, scale) point of a homogeneous-mix
// sweep. It deliberately reuses the sweep cell machinery — scaleKey in
// the key, runMixCtx for execution — so a grid cell computed remotely is
// byte-identical to the same cell computed by the serial harness, and so
// an attached snapshot.Cell (via snapshot.WithCell on ctx) gives it
// mid-simulation save/resume for free.

// GridCellKey names one grid cell. Keys embed every input that affects
// the result, so a checkpoint or snapshot written for one configuration
// is inapplicable — not corrupting — at another.
func GridCellKey(d Design, bench string, cores int, sc Scale) string {
	return fmt.Sprintf("design=%s|bench=%s|cores=%d|%s", d, bench, cores, scaleKey(sc))
}

// RunGridCell simulates one grid cell. Results are a pure function of
// the arguments: nothing about which process, machine, or attempt runs
// the cell can leak into them. Unknown designs and unbuildable
// configurations return errors wrapping cachemodel.ErrBadConfig (no
// simulation runs); unknown benchmarks fail trace lookup.
func RunGridCell(ctx context.Context, d Design, bench string, cores int, sc Scale) (cachesim.Results, error) {
	if cores <= 0 {
		return cachesim.Results{}, fmt.Errorf("experiments: grid cell needs cores > 0 (got %d)", cores)
	}
	llc, err := NewLLCChecked(d, LLCOptions{Cores: cores, Seed: sc.Seed, FastHash: true})
	if err != nil {
		return cachesim.Results{}, err
	}
	return runMixCtx(ctx, "mix|"+llc.Name(), homogeneous(bench, cores), llc, sc)
}
