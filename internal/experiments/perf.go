package experiments

import (
	"context"
	"fmt"
	"sync"

	"mayacache/internal/cachemodel"
	"mayacache/internal/cachesim"
	"mayacache/internal/harness"
	"mayacache/internal/rng"
)

// Scale controls simulation effort. The paper runs 200M warmup + 200M ROI
// instructions per core; the default here is scaled down so the full
// experiment suite completes in minutes, with shapes already stable.
type Scale struct {
	WarmupInstr uint64
	ROIInstr    uint64
	Seed        uint64
	Parallel    bool // run independent configurations on all CPUs
	// IntraParallelism forwards to cachesim.RunSpec.Parallelism: worker
	// goroutines inside each simulation (0/1 = serial). Like Parallel it
	// is a scheduling knob only — results are identical at any value.
	IntraParallelism int
	// StreamSeeds selects rng.Stream(Seed, i) derivation for multi-seed
	// sweeps. When false (default) they keep the historical Seed+i
	// scheme, so existing pinned results stay valid.
	StreamSeeds bool
}

// seedFor derives the i-th seed of a multi-seed sweep.
func (sc Scale) seedFor(i int) uint64 {
	if sc.StreamSeeds {
		return rng.Stream(sc.Seed, uint64(i))
	}
	return sc.Seed + uint64(i)
}

// QuickScale is the default reduced scale.
func QuickScale() Scale {
	return Scale{WarmupInstr: 2_000_000, ROIInstr: 1_000_000, Seed: 1, Parallel: true}
}

// TinyScale is for unit tests and -short benchmarks.
func TinyScale() Scale {
	return Scale{WarmupInstr: 300_000, ROIInstr: 200_000, Seed: 1}
}

// runMix simulates one workload assignment under one LLC. It is the
// non-context legacy entry point; harness-routed sweeps use runMixCtx.
func runMix(benchNames []string, llc cachemodel.LLC, sc Scale) cachesim.Results {
	res, err := runMixCtx(context.Background(), "mix|"+llc.Name(), benchNames, llc, sc)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// dramFor scales channels with core count (2 channels per 8 cores).
func dramFor(cores int) cachesim.DRAMConfig {
	cfg := cachesim.DefaultDRAMConfig()
	ch := (cores + 3) / 4
	if ch < 1 {
		ch = 1
	}
	cfg.Channels = ch
	return cfg
}

// homogeneous returns the benchmark repeated for n cores.
func homogeneous(bench string, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = bench
	}
	return names
}

// aloneIPCCache memoizes single-core baseline IPCs per (bench, scale).
type aloneKey struct {
	bench  string
	warm   uint64
	roi    uint64
	seed   uint64
}

var (
	aloneMu    sync.Mutex
	aloneCache = map[aloneKey]float64{}
)

// AloneIPC returns the benchmark's single-core IPC on a private 2MB
// baseline LLC — the denominator of the weighted-speedup metric.
func AloneIPC(bench string, sc Scale) float64 {
	v, err := AloneIPCCtx(context.Background(), bench, sc)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return v
}

// MixResult is one (mix, design) performance measurement.
type MixResult struct {
	Mix      string
	Design   Design
	WS       float64 // weighted speedup
	MPKI     float64
	IPCs     []float64
	LLCStats cachemodel.Stats
}

// RunMixDesign simulates the benchmark assignment under the named design
// and computes the weighted speedup against single-core baseline IPCs.
func RunMixDesign(mixName string, benchNames []string, d Design, sc Scale) MixResult {
	res, err := RunMixDesignCtx(context.Background(), mixName, benchNames, d, sc)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// RunMixLLC is RunMixDesign with a caller-supplied LLC instance (used for
// configuration sweeps like Fig 4's reuse-way study).
func RunMixLLC(mixName string, benchNames []string, d Design, llc cachemodel.LLC, sc Scale) MixResult {
	res, err := RunMixLLCCtx(context.Background(), mixName, benchNames, d, llc, sc)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// parallelFor runs f(i) for i in [0, n), optionally across CPUs, through
// the harness's bounded pool. Panics in f are recovered by the pool and
// re-raised here, preserving the legacy fail-fast behavior for callers
// that have not adopted the harness error path.
func parallelFor(n int, parallel bool, f func(i int)) {
	workers := 1
	if parallel {
		workers = harness.DefaultWorkers()
	}
	err := harness.ParallelFor(context.Background(), workers, n, func(_ context.Context, i int) error {
		f(i)
		return nil
	})
	if err != nil {
		panic(err)
	}
}
