package experiments

import (
	"fmt"
	"sync"

	"mayacache/internal/cachemodel"
	"mayacache/internal/cachesim"
	"mayacache/internal/metrics"
	"mayacache/internal/trace"
)

// Scale controls simulation effort. The paper runs 200M warmup + 200M ROI
// instructions per core; the default here is scaled down so the full
// experiment suite completes in minutes, with shapes already stable.
type Scale struct {
	WarmupInstr uint64
	ROIInstr    uint64
	Seed        uint64
	Parallel    bool // run independent configurations on all CPUs
}

// QuickScale is the default reduced scale.
func QuickScale() Scale {
	return Scale{WarmupInstr: 2_000_000, ROIInstr: 1_000_000, Seed: 1, Parallel: true}
}

// TinyScale is for unit tests and -short benchmarks.
func TinyScale() Scale {
	return Scale{WarmupInstr: 300_000, ROIInstr: 200_000, Seed: 1}
}

// runMix simulates one workload assignment under one LLC.
func runMix(benchNames []string, llc cachemodel.LLC, sc Scale) cachesim.Results {
	gens := make([]trace.Generator, len(benchNames))
	for i, b := range benchNames {
		gens[i] = trace.MustGenerator(trace.MustLookup(b), i, sc.Seed)
	}
	sys := cachesim.New(cachesim.Config{
		Cores: len(benchNames),
		Core:  cachesim.DefaultCoreParams(),
		LLC:   llc,
		DRAM:  dramFor(len(benchNames)),
		Seed:  sc.Seed,
	}, gens)
	return sys.Run(sc.WarmupInstr, sc.ROIInstr)
}

// dramFor scales channels with core count (2 channels per 8 cores).
func dramFor(cores int) cachesim.DRAMConfig {
	cfg := cachesim.DefaultDRAMConfig()
	ch := (cores + 3) / 4
	if ch < 1 {
		ch = 1
	}
	cfg.Channels = ch
	return cfg
}

// homogeneous returns the benchmark repeated for n cores.
func homogeneous(bench string, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = bench
	}
	return names
}

// aloneIPCCache memoizes single-core baseline IPCs per (bench, scale).
type aloneKey struct {
	bench  string
	warm   uint64
	roi    uint64
	seed   uint64
}

var (
	aloneMu    sync.Mutex
	aloneCache = map[aloneKey]float64{}
)

// AloneIPC returns the benchmark's single-core IPC on a private 2MB
// baseline LLC — the denominator of the weighted-speedup metric.
func AloneIPC(bench string, sc Scale) float64 {
	k := aloneKey{bench, sc.WarmupInstr, sc.ROIInstr, sc.Seed}
	aloneMu.Lock()
	v, ok := aloneCache[k]
	aloneMu.Unlock()
	if ok {
		return v
	}
	llc := NewLLC(DesignBaseline, LLCOptions{Cores: 1, Seed: sc.Seed})
	res := runMix([]string{bench}, llc, sc)
	v = res.Cores[0].IPC
	aloneMu.Lock()
	aloneCache[k] = v
	aloneMu.Unlock()
	return v
}

// MixResult is one (mix, design) performance measurement.
type MixResult struct {
	Mix      string
	Design   Design
	WS       float64 // weighted speedup
	MPKI     float64
	IPCs     []float64
	LLCStats cachemodel.Stats
}

// RunMixDesign simulates the benchmark assignment under the named design
// and computes the weighted speedup against single-core baseline IPCs.
func RunMixDesign(mixName string, benchNames []string, d Design, sc Scale) MixResult {
	llc := NewLLC(d, LLCOptions{Cores: len(benchNames), Seed: sc.Seed, FastHash: true})
	return RunMixLLC(mixName, benchNames, d, llc, sc)
}

// RunMixLLC is RunMixDesign with a caller-supplied LLC instance (used for
// configuration sweeps like Fig 4's reuse-way study).
func RunMixLLC(mixName string, benchNames []string, d Design, llc cachemodel.LLC, sc Scale) MixResult {
	res := runMix(benchNames, llc, sc)
	ipcs := make([]float64, len(res.Cores))
	alone := make([]float64, len(res.Cores))
	for i, c := range res.Cores {
		ipcs[i] = c.IPC
		alone[i] = AloneIPC(benchNames[i], sc)
	}
	ws, err := metrics.WeightedSpeedup(ipcs, alone)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return MixResult{
		Mix: mixName, Design: d, WS: ws, MPKI: res.MPKI(),
		IPCs: ipcs, LLCStats: res.LLCStats,
	}
}

// parallelFor runs f(i) for i in [0, n), optionally across CPUs.
func parallelFor(n int, parallel bool, f func(i int)) {
	if !parallel {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallelism())
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
}
