// Package experiments wires workloads, cache designs, and the simulator
// into the paper's numbered experiments. Every figure and table in the
// evaluation has a function here; cmd tools and the benchmark harness are
// thin wrappers over them.
package experiments

import (
	"mayacache/internal/cachemodel"

	// The designs register their registry factories in init(); the blank
	// imports make every named design buildable through NewLLCChecked even
	// though nothing here references the packages directly.
	_ "mayacache/internal/baseline"
	_ "mayacache/internal/ceaser"
	_ "mayacache/internal/core"
	_ "mayacache/internal/mirage"
)

// Design names a cache design under test.
type Design string

// The designs compared in the paper.
const (
	DesignBaseline   Design = "Baseline"
	DesignMirage     Design = "Mirage"
	DesignMirageLite Design = "Mirage-Lite"
	DesignMaya       Design = "Maya"
	DesignMayaISO    Design = "Maya-ISO"
)

// setsPerCore is the per-core set count: a 2MB/core 16-way baseline slice
// has 2MB / 64B / 16 = 2048 sets.
const setsPerCore = 2048

// LLCOptions parameterizes design construction.
type LLCOptions struct {
	// Cores scales capacity (2MB baseline-equivalent per core).
	Cores int
	// Seed drives keys and randomness.
	Seed uint64
	// FastHash selects the non-cryptographic index hasher for bulk
	// performance sweeps (see cachemodel.XorHasher); security and attack
	// experiments leave it false to use PRINCE.
	FastHash bool
	// ReuseWays overrides Maya's reuse ways per skew (0 = default 3).
	ReuseWays int
	// InvalidWays overrides Maya's invalid ways per skew (0 = default 6).
	InvalidWays int
	// DataScale multiplies Maya's base ways for the LLC-size sensitivity
	// study (0 = default 1.0).
	DataScale float64
}

// buildOptions translates LLCOptions into the registry's BuildOptions.
func (o LLCOptions) buildOptions() cachemodel.BuildOptions {
	return cachemodel.BuildOptions{
		Cores:       o.Cores,
		SetsPerCore: setsPerCore,
		Seed:        o.Seed,
		FastHash:    o.FastHash,
		ReuseWays:   o.ReuseWays,
		InvalidWays: o.InvalidWays,
		DataScale:   o.DataScale,
	}
}

// NewLLCChecked constructs the named design scaled to opts.Cores through
// the cachemodel registry, returning an error wrapping
// cachemodel.ErrBadConfig for unknown designs or invalid geometry.
func NewLLCChecked(d Design, opts LLCOptions) (cachemodel.LLC, error) {
	return cachemodel.Build(string(d), opts.buildOptions())
}

// NewLLC constructs the named design scaled to opts.Cores.
//
// Deprecated: use NewLLCChecked, which reports configuration errors
// instead of crashing; NewLLC remains for callers with statically
// known-good designs.
func NewLLC(d Design, opts LLCOptions) cachemodel.LLC {
	llc, err := NewLLCChecked(d, opts)
	if err != nil {
		panic(err)
	}
	return llc
}

// AllDesigns returns the designs of the paper's headline comparison.
func AllDesigns() []Design {
	return []Design{DesignBaseline, DesignMirage, DesignMaya}
}
