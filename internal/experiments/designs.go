// Package experiments wires workloads, cache designs, and the simulator
// into the paper's numbered experiments. Every figure and table in the
// evaluation has a function here; cmd tools and the benchmark harness are
// thin wrappers over them.
package experiments

import (
	"fmt"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/core"
	"mayacache/internal/mirage"
)

// Design names a cache design under test.
type Design string

// The designs compared in the paper.
const (
	DesignBaseline   Design = "Baseline"
	DesignMirage     Design = "Mirage"
	DesignMirageLite Design = "Mirage-Lite"
	DesignMaya       Design = "Maya"
	DesignMayaISO    Design = "Maya-ISO"
)

// setsPerCore is the per-core set count: a 2MB/core 16-way baseline slice
// has 2MB / 64B / 16 = 2048 sets.
const setsPerCore = 2048

// LLCOptions parameterizes design construction.
type LLCOptions struct {
	// Cores scales capacity (2MB baseline-equivalent per core).
	Cores int
	// Seed drives keys and randomness.
	Seed uint64
	// FastHash selects the non-cryptographic index hasher for bulk
	// performance sweeps (see cachemodel.XorHasher); security and attack
	// experiments leave it false to use PRINCE.
	FastHash bool
	// ReuseWays overrides Maya's reuse ways per skew (0 = default 3).
	ReuseWays int
	// InvalidWays overrides Maya's invalid ways per skew (0 = default 6).
	InvalidWays int
	// DataScale multiplies Maya's base ways for the LLC-size sensitivity
	// study (0 = default 1.0).
	DataScale float64
}

func (o LLCOptions) hasher(skews int, sets int) cachemodel.IndexHasher {
	if !o.FastHash {
		return nil // designs default to PRINCE
	}
	return cachemodel.NewXorHasher(skews, log2(sets), o.Seed)
}

func log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// NewLLC constructs the named design scaled to opts.Cores.
func NewLLC(d Design, opts LLCOptions) cachemodel.LLC {
	if opts.Cores <= 0 {
		panic("experiments: Cores must be positive")
	}
	sets := setsPerCore * opts.Cores
	switch d {
	case DesignBaseline:
		return baseline.New(baseline.Config{
			Sets: sets, Ways: 16, Replacement: baseline.SRRIP, Seed: opts.Seed,
		})
	case DesignMirage:
		cfg := mirage.DefaultConfig(opts.Seed)
		cfg.SetsPerSkew = sets
		cfg.Hasher = opts.hasher(cfg.Skews, sets)
		return mirage.New(cfg)
	case DesignMirageLite:
		cfg := mirage.LiteConfig(opts.Seed)
		cfg.SetsPerSkew = sets
		cfg.Hasher = opts.hasher(cfg.Skews, sets)
		return mirage.New(cfg)
	case DesignMaya:
		cfg := core.DefaultConfig(opts.Seed)
		cfg.SetsPerSkew = sets
		if opts.ReuseWays > 0 {
			cfg.ReuseWays = opts.ReuseWays
			if opts.ReuseWays >= 5 {
				// Fig 4: five or more reuse ways widen the tag lookup
				// by one cycle.
				cfg.ExtraLookupLatency = 1
			}
		}
		if opts.InvalidWays > 0 {
			cfg.InvalidWays = opts.InvalidWays
		}
		if opts.DataScale > 0 {
			cfg.BaseWays = int(float64(cfg.BaseWays)*opts.DataScale + 0.5)
			if cfg.BaseWays < 1 {
				cfg.BaseWays = 1
			}
		}
		cfg.Hasher = opts.hasher(cfg.Skews, sets)
		return core.New(cfg)
	case DesignMayaISO:
		// ISO-area Maya: data store grown back to ~16MB (8 base ways per
		// skew) plus 4 reuse ways, matching Mirage's area envelope.
		cfg := core.DefaultConfig(opts.Seed)
		cfg.SetsPerSkew = sets
		cfg.BaseWays = 8
		cfg.ReuseWays = 4
		cfg.Hasher = opts.hasher(cfg.Skews, sets)
		return core.New(cfg)
	default:
		panic(fmt.Sprintf("experiments: unknown design %q", d))
	}
}

// AllDesigns returns the designs of the paper's headline comparison.
func AllDesigns() []Design {
	return []Design{DesignBaseline, DesignMirage, DesignMaya}
}
