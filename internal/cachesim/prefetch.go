package cachesim

// A region-based stride prefetcher standing in for the paper's IPCP
// prefetcher at the L1D (Table V). Without program counters in the
// synthetic traces, streams are classified per 4KB region: the table
// tracks each hot region's last offset and stride and, once a stride
// repeats (confidence >= 2), issues degree-N prefetches down the
// hierarchy. Prefetches are asynchronous — the core never waits on them —
// but they consume DRAM bandwidth and pollute the caches, which is the
// trade-off the ablation benchmarks quantify. The prefetcher is off by
// default (Degree 0) so that headline experiments match the simpler
// no-prefetch configuration documented in DESIGN.md.

// PrefetchConfig tunes the stride prefetcher.
type PrefetchConfig struct {
	// Degree is how many strided lines to prefetch on a confident
	// prediction (0 disables prefetching).
	Degree int
	// TableEntries is the region-tracker capacity (default 64).
	TableEntries int
}

const regionShift = 6 // 4KB region = 64 lines

type strideEntry struct {
	region     uint64
	lastOffset int32
	stride     int32
	confidence int8
	valid      bool
}

type prefetcher struct {
	cfg     PrefetchConfig
	entries []strideEntry
	// issued counts prefetches sent; useful counts prefetched lines that
	// were already cached (wasted issue slots are the difference).
	issued uint64
}

func newPrefetcher(cfg PrefetchConfig) *prefetcher {
	if cfg.Degree <= 0 {
		return nil
	}
	if cfg.TableEntries <= 0 {
		cfg.TableEntries = 64
	}
	return &prefetcher{cfg: cfg, entries: make([]strideEntry, cfg.TableEntries)}
}

// observe records a demand access and returns the lines to prefetch.
func (p *prefetcher) observe(line uint64) []uint64 {
	region := line >> regionShift
	offset := int32(line & (1<<regionShift - 1))
	slot := &p.entries[region%uint64(len(p.entries))]
	if !slot.valid || slot.region != region {
		*slot = strideEntry{region: region, lastOffset: offset, valid: true}
		return nil
	}
	stride := offset - slot.lastOffset
	slot.lastOffset = offset
	if stride == 0 {
		return nil
	}
	if stride == slot.stride {
		if slot.confidence < 4 {
			slot.confidence++
		}
	} else {
		slot.stride = stride
		slot.confidence = 0
		return nil
	}
	if slot.confidence < 2 {
		return nil
	}
	out := make([]uint64, 0, p.cfg.Degree)
	next := line
	for i := 0; i < p.cfg.Degree; i++ {
		next += uint64(int64(stride))
		out = append(out, next)
	}
	p.issued += uint64(len(out))
	return out
}

// Issued returns the number of prefetches issued.
func (p *prefetcher) Issued() uint64 {
	if p == nil {
		return 0
	}
	return p.issued
}
