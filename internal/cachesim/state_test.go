package cachesim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/ceaser"
	maya "mayacache/internal/core"
	"mayacache/internal/mirage"
	"mayacache/internal/snapshot"
	"mayacache/internal/trace"
)

// snapDesigns enumerates one representative configuration per LLC design;
// each factory call returns a brand-new instance so runs are independent.
var snapDesigns = []struct {
	name string
	mk   func() cachemodel.LLC
}{
	{"maya", func() cachemodel.LLC {
		return mustLLC(maya.NewChecked(maya.Config{
			SetsPerSkew: 256, Skews: 2, BaseWays: 6, ReuseWays: 3, InvalidWays: 6,
			Seed: 9, Hasher: cachemodel.NewXorHasher(2, 8, 9),
		}))
	}},
	{"mirage", func() cachemodel.LLC {
		return mustLLC(mirage.NewChecked(mirage.Config{
			SetsPerSkew: 256, Skews: 2, BaseWays: 8, ExtraWays: 6,
			Seed: 9, Hasher: cachemodel.NewXorHasher(2, 8, 9),
		}))
	}},
	{"baseline", func() cachemodel.LLC {
		return mustLLC(baseline.NewChecked(baseline.Config{Sets: 512, Ways: 16, Replacement: baseline.DRRIP, Seed: 9}))
	}},
	{"ceaser", func() cachemodel.LLC {
		return mustLLC(ceaser.NewChecked(ceaser.Config{Sets: 512, Ways: 16, Variant: ceaser.CEASERS, RemapPeriod: 5000, Seed: 9}))
	}},
}

// snapSystem builds a two-core system (mcf + xz) around the given LLC.
func snapSystem(llc cachemodel.LLC) *System {
	params := DefaultCoreParams()
	params.Prefetch = PrefetchConfig{Degree: 2} // exercise prefetcher state
	gens := []trace.Generator{
		trace.MustGenerator(trace.MustLookup("mcf"), 0, 5),
		trace.MustGenerator(trace.MustLookup("xz"), 1, 5),
	}
	return New(Config{Cores: 2, Core: params, LLC: llc, DRAM: DefaultDRAMConfig(), Seed: 5}, gens)
}

const (
	snapWarmup = 20000
	snapROI    = 60000
)

// captureMidROI runs a system with auto-snapshotting until the first save
// taken in the ROI phase, captures those bytes, and aborts the run.
func captureMidROI(t *testing.T, sys *System) []byte {
	t.Helper()
	errCaptured := errors.New("captured")
	var state []byte
	sys.SetAutoSnapshot(&AutoSnapshot{
		Every: 4096,
		Save: func(data []byte) error {
			snap, err := snapshot.Decode(data)
			if err != nil {
				t.Fatalf("auto-snapshot does not decode: %v", err)
			}
			if snap.Header.Phase != snapshot.PhaseROI {
				return nil // keep running until the ROI
			}
			state = data
			return errCaptured
		},
	})
	if _, err := sys.RunCtx(context.Background(), snapWarmup, snapROI); !errors.Is(err, errCaptured) {
		t.Fatalf("interrupted run returned %v", err)
	}
	if state == nil {
		t.Fatal("no mid-ROI snapshot captured")
	}
	return state
}

// TestResumeBitExact is the tentpole acceptance test: for every LLC
// design, a run snapshotted mid-ROI, restored into a fresh process-worth
// of state, and finished must produce Results byte-identical (JSON) to an
// uninterrupted run.
func TestResumeBitExact(t *testing.T) {
	for _, d := range snapDesigns {
		t.Run(d.name, func(t *testing.T) {
			full, err := snapSystem(d.mk()).RunCtx(context.Background(), snapWarmup, snapROI)
			if err != nil {
				t.Fatal(err)
			}

			state := captureMidROI(t, snapSystem(d.mk()))

			resumed := snapSystem(d.mk())
			if err := resumed.RestoreState(state); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}
			res, err := resumed.ResumeCtx(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			fullJSON, _ := json.Marshal(full)
			resJSON, _ := json.Marshal(res)
			if !bytes.Equal(fullJSON, resJSON) {
				t.Fatalf("resumed results differ from uninterrupted run:\n full   %s\n resumed %s", fullJSON, resJSON)
			}
		})
	}
}

// TestSnapshotTimingDoesNotPerturb: taking periodic snapshots must be
// invisible to the simulation — a run that saves every 2048 steps yields
// the same results as one that never saves.
func TestSnapshotTimingDoesNotPerturb(t *testing.T) {
	quiet, err := snapSystem(snapDesigns[0].mk()).RunCtx(context.Background(), snapWarmup, snapROI)
	if err != nil {
		t.Fatal(err)
	}
	noisy := snapSystem(snapDesigns[0].mk())
	saves := 0
	noisy.SetAutoSnapshot(&AutoSnapshot{
		Every: 2048,
		Save:  func([]byte) error { saves++; return nil },
	})
	res, err := noisy.RunCtx(context.Background(), snapWarmup, snapROI)
	if err != nil {
		t.Fatal(err)
	}
	if saves == 0 {
		t.Fatal("periodic snapshots never fired")
	}
	a, _ := json.Marshal(quiet)
	b, _ := json.Marshal(res)
	if !bytes.Equal(a, b) {
		t.Fatal("snapshotting perturbed the simulation")
	}
}

// TestTriggerWritesDeadlineSnapshot: firing the trigger makes the run
// save once more and stop with ErrStopped, and the saved state resumes to
// the uninterrupted answer.
func TestTriggerWritesDeadlineSnapshot(t *testing.T) {
	full, err := snapSystem(snapDesigns[0].mk()).RunCtx(context.Background(), snapWarmup, snapROI)
	if err != nil {
		t.Fatal(err)
	}

	var trig snapshot.Trigger
	trig.Fire() // fired before the run: first poll must stop it
	var state []byte
	sys := snapSystem(snapDesigns[0].mk())
	sys.SetAutoSnapshot(&AutoSnapshot{
		Trigger: &trig,
		Save:    func(data []byte) error { state = data; return nil },
	})
	if _, err := sys.RunCtx(context.Background(), snapWarmup, snapROI); !errors.Is(err, snapshot.ErrStopped) {
		t.Fatalf("triggered run returned %v, want ErrStopped", err)
	}
	if state == nil {
		t.Fatal("no deadline snapshot written")
	}

	resumed := snapSystem(snapDesigns[0].mk())
	if err := resumed.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	res, err := resumed.ResumeCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(full)
	b, _ := json.Marshal(res)
	if !bytes.Equal(a, b) {
		t.Fatal("deadline-snapshot resume diverged from uninterrupted run")
	}
}

// TestRestoreRejectsForeignRuns: each identity field mismatch must be a
// MismatchError naming that field, checked before any section decodes.
func TestRestoreRejectsForeignRuns(t *testing.T) {
	state := captureMidROI(t, snapSystem(snapDesigns[0].mk()))

	expectMismatch := func(t *testing.T, sys *System, field string) {
		t.Helper()
		err := sys.RestoreState(state)
		var mm *snapshot.MismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("got %v, want MismatchError", err)
		}
		if mm.Field != field {
			t.Fatalf("mismatch field %q, want %q", mm.Field, field)
		}
	}

	t.Run("seed", func(t *testing.T) {
		sys := snapSystem(snapDesigns[0].mk())
		sys.cfg.Seed++
		expectMismatch(t, sys, "seed")
	})
	t.Run("design", func(t *testing.T) {
		expectMismatch(t, snapSystem(snapDesigns[2].mk()), "design")
	})
	t.Run("workloads", func(t *testing.T) {
		params := DefaultCoreParams()
		params.Prefetch = PrefetchConfig{Degree: 2}
		gens := []trace.Generator{
			trace.MustGenerator(trace.MustLookup("lbm"), 0, 5),
			trace.MustGenerator(trace.MustLookup("xz"), 1, 5),
		}
		sys := New(Config{Cores: 2, Core: params, LLC: snapDesigns[0].mk(), DRAM: DefaultDRAMConfig(), Seed: 5}, gens)
		expectMismatch(t, sys, "workloads")
	})
	t.Run("geometry", func(t *testing.T) {
		sys := snapSystem(snapDesigns[0].mk())
		sys.cfg.Core.L2Sets *= 2
		expectMismatch(t, sys, "geometry")
	})
}

// TestRestoreRejectsCorruptState: truncations and bit flips surface as
// structured errors, never panics or silent acceptance.
func TestRestoreRejectsCorruptState(t *testing.T) {
	state := captureMidROI(t, snapSystem(snapDesigns[0].mk()))
	for _, n := range []int{0, 7, 64, len(state) / 2, len(state) - 1} {
		if err := snapSystem(snapDesigns[0].mk()).RestoreState(state[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	for _, pos := range []int{9, 40, 200, len(state) / 2, len(state) - 2} {
		bad := append([]byte(nil), state...)
		bad[pos] ^= 0x10
		if err := snapSystem(snapDesigns[0].mk()).RestoreState(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
}

// TestRunResumableCellProtocol drives the full cell lifecycle: fresh run
// interrupted by a trigger fired from the OnSave hook, then a resumed run
// in a "new process" (fresh cell, fresh system) completing to the
// uninterrupted answer, then a third call served from the recorded result.
func TestRunResumableCellProtocol(t *testing.T) {
	full, err := snapSystem(snapDesigns[0].mk()).RunCtx(context.Background(), snapWarmup, snapROI)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), snapshot.CellFileName("cell"))
	var trig snapshot.Trigger
	cell, err := snapshot.OpenCell(snapshot.CellSpec{
		Path: path, Every: 4096, Trigger: &trig,
		OnSave: func(saves int) {
			if saves >= 3 {
				trig.Fire()
			}
		},
	}, "cell")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunResumable(context.Background(), snapSystem(snapDesigns[0].mk()), cell, "mix", snapWarmup, snapROI)
	if !errors.Is(err, snapshot.ErrStopped) {
		t.Fatalf("interrupted RunResumable returned %v, want ErrStopped", err)
	}

	cell2, err := snapshot.OpenCell(snapshot.CellSpec{Path: path}, "cell")
	if err != nil {
		t.Fatal(err)
	}
	if cell2.SystemState("mix") == nil {
		t.Fatal("reopened cell has no in-progress state")
	}
	res, err := RunResumable(context.Background(), snapSystem(snapDesigns[0].mk()), cell2, "mix", snapWarmup, snapROI)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(full)
	b, _ := json.Marshal(res)
	if !bytes.Equal(a, b) {
		t.Fatalf("resumed cell run differs:\n full   %s\n resumed %s", a, b)
	}

	// Completed sub-runs are served from the record without simulating:
	// hand RunResumable a system that would panic if driven.
	cell3, err := snapshot.OpenCell(snapshot.CellSpec{Path: path}, "cell")
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunResumable(context.Background(), snapSystem(snapDesigns[0].mk()), cell3, "mix", snapWarmup, snapROI)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(cached)
	if !bytes.Equal(a, c) {
		t.Fatal("cached result differs from live result")
	}
}

// TestResumeCtxRequiresState guards the misuse of resuming a system that
// never ran and never restored.
func TestResumeCtxRequiresState(t *testing.T) {
	sys := snapSystem(snapDesigns[0].mk())
	if _, err := sys.ResumeCtx(context.Background()); err == nil {
		t.Fatal("ResumeCtx on a fresh system succeeded")
	}
}
