package cachesim

// DRAMConfig models a DDR4-3200-like main memory in core cycles (4 GHz):
// tRP = tRCD = tCAS = 12.5ns = 50 cycles each (Table V), two channels per
// eight cores, open-page row-buffer policy, 4KB rows.
type DRAMConfig struct {
	// Channels is the number of independent channels.
	Channels int
	// BanksPerChannel is the number of banks per channel.
	BanksPerChannel int
	// RowLines is the row-buffer size in cache lines (4KB row = 64).
	RowLines int
	// TCAS, TRP, TRCD are the timing parameters in core cycles.
	TCAS, TRP, TRCD uint64
	// Burst is the data-transfer time of one 64B line in core cycles.
	Burst uint64
}

// DefaultDRAMConfig returns the paper's memory configuration.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Channels:        2,
		BanksPerChannel: 16,
		RowLines:        64,
		TCAS:            50,
		TRP:             50,
		TRCD:            50,
		Burst:           10,
	}
}

type bank struct {
	openRow  uint64
	hasRow   bool
	nextFree uint64
}

// DRAM is a bank/channel contention model. Requests carry the issuing
// core's local timestamp; because cores advance asynchronously, timestamps
// are only approximately ordered, which is acceptable for the queueing
// behaviour the evaluation needs (see DESIGN.md).
type DRAM struct {
	cfg      DRAMConfig
	banks    []bank
	chanFree []uint64
	// Power-of-two fast paths for route(), set at construction when the
	// geometry allows (the default config does): x%n == x&(n-1) and
	// x/n == x>>log2(n), sparing two hardware divides per request.
	bankMask uint64 // len(banks)-1 when a power of two, else 0
	chanMask int    // Channels-1 when a power of two, else 0
	rowShift uint   // log2(RowLines) when a power of two
	pow2     bool
	// Stats.
	reads, writes, rowHits, rowMisses uint64
}

// NewDRAM constructs the memory model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Channels <= 0 || cfg.BanksPerChannel <= 0 || cfg.RowLines <= 0 {
		panic("cachesim: invalid DRAM configuration")
	}
	d := &DRAM{
		cfg:      cfg,
		banks:    make([]bank, cfg.Channels*cfg.BanksPerChannel),
		chanFree: make([]uint64, cfg.Channels),
	}
	nb := len(d.banks)
	if nb&(nb-1) == 0 && cfg.Channels&(cfg.Channels-1) == 0 && cfg.RowLines&(cfg.RowLines-1) == 0 {
		d.pow2 = true
		d.bankMask = uint64(nb - 1)
		d.chanMask = cfg.Channels - 1
		for n := cfg.RowLines; n > 1; n >>= 1 {
			d.rowShift++
		}
	}
	return d
}

// route maps a line address to (channel, bank index, row). The bank index
// folds in higher address bits (as real controllers' XOR interleaving
// does) so that concurrent streams with identical low bits spread across
// banks instead of thrashing one.
func (d *DRAM) route(line uint64) (int, int, uint64) {
	chunk := line >> 2 // 4-line (256B) bank stripes
	mixed := chunk ^ (line >> 12) ^ (line >> 24)
	if d.pow2 {
		bankIdx := int(mixed & d.bankMask)
		return bankIdx & d.chanMask, bankIdx, line >> d.rowShift
	}
	bankIdx := int(mixed % uint64(len(d.banks)))
	ch := bankIdx % d.cfg.Channels
	row := line / uint64(d.cfg.RowLines)
	return ch, bankIdx, row
}

// Read services a demand fetch issued at time now and returns its latency
// in cycles.
func (d *DRAM) Read(now, line uint64) uint64 {
	d.reads++
	return d.service(now, line)
}

// Write enqueues a writeback at time now. Writebacks consume bank and
// channel time but nothing waits on them.
func (d *DRAM) Write(now, line uint64) {
	d.writes++
	d.service(now, line)
}

func (d *DRAM) service(now, line uint64) uint64 {
	ch, bi, row := d.route(line)
	b := &d.banks[bi]
	// Row activation proceeds in the bank, overlapping with activity in
	// other banks; only the final data burst serializes on the channel.
	start := max64(now, b.nextFree)
	var access uint64
	if b.hasRow && b.openRow == row {
		d.rowHits++
		access = d.cfg.TCAS
	} else {
		d.rowMisses++
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		b.openRow, b.hasRow = row, true
	}
	burstStart := max64(start+access, d.chanFree[ch])
	done := burstStart + d.cfg.Burst
	b.nextFree = done
	d.chanFree[ch] = done
	return done - now
}

// Counters returns (reads, writes, rowHits, rowMisses).
func (d *DRAM) Counters() (reads, writes, rowHits, rowMisses uint64) {
	return d.reads, d.writes, d.rowHits, d.rowMisses
}

// ResetCounters zeroes the statistics (timing state is preserved).
func (d *DRAM) ResetCounters() {
	d.reads, d.writes, d.rowHits, d.rowMisses = 0, 0, 0, 0
}

func max64(xs ...uint64) uint64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
