package cachesim

import (
	"testing"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	maya "mayacache/internal/core"
	"mayacache/internal/trace"
)

// mustLLC unwraps a checked cache constructor for statically valid test
// geometries.
func mustLLC[T cachemodel.LLC](c T, err error) T {
	if err != nil {
		panic(err)
	}
	return c
}

// testLLC returns a small 2MB-ish baseline LLC for single-core tests.
func testLLC(seed uint64) cachemodel.LLC {
	return mustLLC(baseline.NewChecked(baseline.Config{Sets: 2048, Ways: 16, Replacement: baseline.SRRIP, Seed: seed}))
}

func singleCoreSystem(t *testing.T, bench string, llc cachemodel.LLC) *System {
	t.Helper()
	g, err := trace.NewGenerator(trace.MustLookup(bench), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{
		Cores: 1,
		Core:  DefaultCoreParams(),
		LLC:   llc,
		DRAM:  DefaultDRAMConfig(),
		Seed:  1,
	}, []trace.Generator{g})
}

func TestRunProducesPlausibleIPC(t *testing.T) {
	s := singleCoreSystem(t, "mcf", testLLC(1))
	res := s.Run(50000, 200000)
	if len(res.Cores) != 1 {
		t.Fatalf("%d core results", len(res.Cores))
	}
	c := res.Cores[0]
	if c.Instructions < 200000 {
		t.Fatalf("retired %d < target", c.Instructions)
	}
	if c.IPC <= 0 || c.IPC > 6 {
		t.Fatalf("IPC %v out of (0, issue width]", c.IPC)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() Results {
		s := singleCoreSystem(t, "xz", testLLC(7))
		return s.Run(20000, 50000)
	}
	a, b := mk(), mk()
	if a.Cores[0].Cycles != b.Cores[0].Cycles {
		t.Fatalf("cycles differ across identical runs: %d vs %d", a.Cores[0].Cycles, b.Cores[0].Cycles)
	}
	if a.LLCStats != b.LLCStats {
		t.Fatal("LLC stats differ across identical runs")
	}
}

func TestHotWorkloadFasterThanStreaming(t *testing.T) {
	// leela (cache-friendly) must achieve much higher IPC than lbm
	// (streaming).
	sHot := singleCoreSystem(t, "leela", testLLC(2))
	sStream := singleCoreSystem(t, "lbm", testLLC(3))
	rHot := sHot.Run(2000000, 500000)
	rStream := sStream.Run(2000000, 500000)
	if rHot.Cores[0].IPC <= rStream.Cores[0].IPC {
		t.Fatalf("leela IPC %.3f not above lbm IPC %.3f",
			rHot.Cores[0].IPC, rStream.Cores[0].IPC)
	}
	if rHot.MPKI() >= rStream.MPKI() {
		t.Fatalf("leela MPKI %.2f not below lbm MPKI %.2f", rHot.MPKI(), rStream.MPKI())
	}
}

func TestLLCFittingHasLowMPKI(t *testing.T) {
	// The 24K-line footprint needs a long warmup to load before the ROI
	// measures steady-state behaviour (compulsory misses excluded).
	s := singleCoreSystem(t, "leela", testLLC(4))
	res := s.Run(3000000, 1000000)
	if mpki := res.MPKI(); mpki > 2.0 {
		t.Fatalf("leela LLC MPKI %.2f; expected an LLC-fitting workload", mpki)
	}
}

func TestMemIntensiveHasHighMPKI(t *testing.T) {
	s := singleCoreSystem(t, "mcf", testLLC(5))
	res := s.Run(50000, 200000)
	if mpki := res.MPKI(); mpki < 2.0 {
		t.Fatalf("mcf LLC MPKI %.2f; expected memory-intensive (>2)", mpki)
	}
}

func TestMultiCoreSharedLLCContention(t *testing.T) {
	// The same benchmark must lose IPC when seven contending cores share
	// the LLC versus running alone on the same-size cache.
	mkSystem := func(cores int) *System {
		gens := make([]trace.Generator, cores)
		for i := range gens {
			gens[i] = trace.MustGenerator(trace.MustLookup("mcf"), i, 1)
		}
		return New(Config{
			Cores: cores,
			Core:  DefaultCoreParams(),
			LLC:   mustLLC(baseline.NewChecked(baseline.Config{Sets: 4096, Ways: 16, Replacement: baseline.SRRIP, Seed: 1})),
			DRAM:  DefaultDRAMConfig(),
			Seed:  1,
		}, gens)
	}
	alone := mkSystem(1).Run(20000, 100000)
	shared := mkSystem(8).Run(20000, 100000)
	if shared.Cores[0].IPC >= alone.Cores[0].IPC {
		t.Fatalf("no contention effect: alone %.3f, shared %.3f",
			alone.Cores[0].IPC, shared.Cores[0].IPC)
	}
}

func TestMayaLLCIntegration(t *testing.T) {
	// End-to-end: the Maya design runs under the simulator and reports
	// tag-only hits (its signature behaviour).
	cfg := maya.Config{
		SetsPerSkew: 2048, Skews: 2, BaseWays: 6, ReuseWays: 3, InvalidWays: 6,
		Seed: 1, Hasher: cachemodel.NewXorHasher(2, 11, 1),
	}
	s := singleCoreSystem(t, "mcf", mustLLC(maya.NewChecked(cfg)))
	res := s.Run(50000, 200000)
	if res.LLCStats.TagOnlyHits == 0 {
		t.Fatal("Maya never saw a tag-only hit under mcf")
	}
	if res.Cores[0].IPC <= 0 {
		t.Fatal("non-positive IPC")
	}
}

func TestWritebacksReachDRAM(t *testing.T) {
	// The stream must wrap the 32K-line LLC before dirty evictions reach
	// memory, hence the longer run.
	s := singleCoreSystem(t, "lbm", testLLC(6))
	res := s.Run(200000, 1000000)
	if res.DRAMWrites == 0 {
		t.Fatal("streaming store workload produced no DRAM writes")
	}
}

func TestDRAMRowBufferLocality(t *testing.T) {
	// Sequential streams should see high row-hit rates.
	s := singleCoreSystem(t, "lbm", testLLC(7))
	res := s.Run(20000, 200000)
	if res.DRAMRowHits == 0 {
		t.Fatal("no row hits for a sequential stream")
	}
	hitRate := float64(res.DRAMRowHits) / float64(res.DRAMRowHits+res.DRAMRowMisses)
	if hitRate < 0.3 {
		t.Fatalf("row hit rate %.2f too low for streaming", hitRate)
	}
}

func TestROIStatsExcludeWarmup(t *testing.T) {
	s := singleCoreSystem(t, "xz", testLLC(8))
	res := s.Run(100000, 100000)
	// Accesses counted must be consistent with the ROI only: misses
	// cannot exceed accesses, instructions must equal the ROI target
	// (within one event's gap).
	if res.LLCStats.Misses > res.LLCStats.Accesses {
		t.Fatal("misses exceed accesses")
	}
	if res.Cores[0].Instructions < 100000 || res.Cores[0].Instructions > 102000 {
		t.Fatalf("ROI instructions %d not ~100000", res.Cores[0].Instructions)
	}
}

func TestDRAMModel(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// First access to a row: miss; immediate second access: hit and
	// faster.
	lat1 := d.Read(0, 0)
	lat2 := d.Read(lat1+100, 1) // same row (lines 0 and 1)
	if lat2 >= lat1 {
		t.Fatalf("row hit latency %d not below row miss %d", lat2, lat1)
	}
	// A distant line maps to another row: closed-row penalty returns.
	lat3 := d.Read(lat1+1000, 1<<20)
	if lat3 <= lat2 {
		t.Fatalf("row miss latency %d not above row hit %d", lat3, lat2)
	}
}

func TestDRAMBankContention(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// Two simultaneous requests to the same bank serialize.
	l1 := d.Read(0, 0)
	l2 := d.Read(0, 0) // same line, same bank, same instant
	if l2 <= l1 {
		t.Fatalf("second same-bank request (%d) not delayed past first (%d)", l2, l1)
	}
}

func BenchmarkSystemStep(b *testing.B) {
	g := trace.MustGenerator(trace.MustLookup("mcf"), 0, 1)
	s := New(Config{
		Cores: 1, Core: DefaultCoreParams(),
		LLC:  mustLLC(baseline.NewChecked(baseline.Config{Sets: 2048, Ways: 16, Replacement: baseline.SRRIP, Seed: 1})),
		DRAM: DefaultDRAMConfig(), Seed: 1,
	}, []trace.Generator{g})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step(s.cores[0])
	}
}
