package cachesim

// Merge half of the deterministic parallel run mode: consumes the per-core
// record streams the front workers produce (see front.go) in the exact
// order the serial drive loop would generate them, applying every shared
// LLC/DRAM operation, clock advance, and snapshot/cancellation poll with
// byte-identical state transitions.

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/invariant"
	"mayacache/internal/snapshot"
	"mayacache/internal/trace"
)

// recordSource hands the merge one core's next step record, blocking on
// that core's ring when the worker is behind. Blocking is what keeps
// the replay order exact: the merge never skips ahead to another core just
// because the laggard's records aren't ready yet.
type recordSource struct {
	rings    []*ring
	errs     []error // one slot per worker, written before its ring closes
	cur      []*batch
	pos      []int
	opPos    []int
	consumed []uint64 // records applied per core; drives replica sync
}

func newRecordSource(cores int) *recordSource {
	rs := &recordSource{
		rings:    make([]*ring, cores),
		errs:     make([]error, cores),
		cur:      make([]*batch, cores),
		pos:      make([]int, cores),
		opPos:    make([]int, cores),
		consumed: make([]uint64, cores),
	}
	for i := range rs.rings {
		rs.rings[i] = newRing()
	}
	return rs
}

func (rs *recordSource) next(i int) (gap int32, kind uint8, ops []sharedOp, err error) {
	b := rs.cur[i]
	if b == nil || rs.pos[i] >= b.n {
		if b != nil {
			rs.rings[i].release()
		}
		b = rs.rings[i].consume()
		if b == nil {
			rs.cur[i] = nil
			if rs.errs[i] != nil {
				return 0, 0, nil, rs.errs[i]
			}
			// Unreachable unless the worker and merge disagree on the
			// phase budgets — a bug, not a runtime condition.
			return 0, 0, nil, fmt.Errorf("cachesim: core %d record stream ended early", i)
		}
		rs.cur[i] = b
		rs.pos[i], rs.opPos[i] = 0, 0
	}
	p := rs.pos[i]
	n := int(b.nOps[p])
	gap, kind = b.gaps[p], b.kinds[p]
	ops = b.ops[rs.opPos[i] : rs.opPos[i]+n]
	rs.pos[i]++
	rs.opPos[i] += n
	rs.consumed[i]++
	return gap, kind, ops, nil
}

// applyStep is the merge half of System.step: clock/retired accounting,
// the recorded shared LLC/DRAM operations in order, and the ROB/MSHR
// outstanding window — all state the serial step would touch outside the
// core's private hierarchy, mutated identically.
func (s *System) applyStep(c *core, gap int32, kind uint8, ops []sharedOp) {
	width := s.cfg.Core.RetireWidth
	c.subIssue += int(gap)
	if width&(width-1) == 0 {
		c.clock += uint64(c.subIssue >> uint(bits.TrailingZeros(uint(width))))
		c.subIssue &= width - 1
	} else {
		c.clock += uint64(c.subIssue / width)
		c.subIssue %= width
	}
	c.retired += uint64(gap) + 1

	p := &s.cfg.Core
	var lat uint64
	for _, op := range ops {
		switch op.kind {
		case opWB:
			r := s.llc.Access(cachemodel.Access{Line: op.line, Type: cachemodel.Writeback, SDID: op.sdid, Core: uint8(c.id)})
			s.pushWBs(c, r.Writebacks)
		case opDemand:
			llcLat := p.LLCLatency + uint64(s.llc.LookupPenalty())
			r := s.llc.Access(cachemodel.Access{Line: op.line, Type: cachemodel.Read, SDID: op.sdid, Core: uint8(c.id)})
			s.pushWBs(c, r.Writebacks)
			lat = p.L1DLatency + p.L2Latency + llcLat
			if !r.DataHit {
				lat += s.dram.Read(c.clock+lat, op.line)
			}
		case opPrefetch:
			r := s.llc.Access(cachemodel.Access{Line: op.line, Type: cachemodel.Read, SDID: op.sdid, Core: uint8(c.id)})
			s.pushWBs(c, r.Writebacks)
			if !r.DataHit {
				s.dram.Read(c.clock, op.line) // bandwidth only; nothing waits
			}
		}
	}

	if kind == stepL1Hit {
		return
	}
	if kind == stepL2Hit {
		lat = p.L1DLatency + p.L2Latency
	}
	completion := c.clock + lat
	limit := s.mlpCap(int(gap))
	for len(c.outstanding)-c.outHead >= limit {
		head := c.outstanding[c.outHead]
		c.outHead++
		if head > c.clock {
			c.clock = head
		}
	}
	if c.outHead > 64 && c.outHead*2 >= len(c.outstanding) {
		c.outstanding = append(c.outstanding[:0], c.outstanding[c.outHead:]...)
		c.outHead = 0
	}
	c.outstanding = append(c.outstanding, completion)
}

// replica reconstructs one core's private front at the merge's replay
// position so mid-run snapshots can serialize it. Workers run ahead of
// the merge, so their live fronts are at future positions; the replica is
// an independent clone advanced lazily — only when a snapshot is due — by
// re-executing the same deterministic private steps.
type replica struct {
	f       *front
	pos     uint64 // private steps replayed so far
	scratch *batch // discard sink for the replayed records
}

// advanceTo replays private steps until the replica has executed n, then
// applies the warmup→ROI stats reset if the merge has passed the global
// phase barrier. The reset is keyed to the *global* phase, not the
// replica's own boundary: serially, a core that finishes warmup early
// keeps its warmup stats until every core arrives at beginROI, and a
// snapshot taken in between must show them un-reset.
func (r *replica) advanceTo(n uint64, globalPhase uint8) {
	for r.pos < n {
		if r.f.phase == snapshot.PhaseWarmup && r.f.retired >= r.f.target {
			r.f.localBeginROI()
		}
		r.f.privateStep(r.scratch)
		r.scratch.reset()
		r.pos++
	}
	if r.f.phase == snapshot.PhaseWarmup && r.f.retired >= r.f.target && globalPhase == snapshot.PhaseROI {
		r.f.localBeginROI()
	}
}

// cloneableGen is the workload contract parallel snapshotting needs: the
// synthetic generators and the trace replayer implement it; see
// trace/clone.go.
type cloneableGen interface {
	Clone() trace.Generator
}

// cloneCache duplicates a private cache through its own snapshot codec
// into a freshly built twin.
func cloneCache(src *baseline.SetAssoc, mk func() *baseline.SetAssoc) (*baseline.SetAssoc, error) {
	dst := mk()
	var e snapshot.Encoder
	src.SaveState(&e)
	d := snapshot.NewDecoder(e.Data())
	if err := dst.RestoreState(d); err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return dst, nil
}

func (p *prefetcher) clone() *prefetcher {
	if p == nil {
		return nil
	}
	c := *p
	c.entries = append([]strideEntry(nil), p.entries...)
	return &c
}

// buildReplicas clones every core's front at the current run position.
// Called before the workers start, while the live fronts are quiescent.
func (s *System) buildReplicas() ([]*replica, error) {
	reps := make([]*replica, len(s.cores))
	for i, c := range s.cores {
		cg, ok := c.gen.(cloneableGen)
		if !ok {
			return nil, fmt.Errorf("cachesim: parallel snapshots need a cloneable workload, %q is not", c.gen.Name())
		}
		l1d, err := cloneCache(c.l1d, func() *baseline.SetAssoc { return s.newL1D(i) })
		if err != nil {
			return nil, fmt.Errorf("cachesim: core %d L1D replica: %w", i, err)
		}
		l2, err := cloneCache(c.l2, func() *baseline.SetAssoc { return s.newL2(i) })
		if err != nil {
			return nil, fmt.Errorf("cachesim: core %d L2 replica: %w", i, err)
		}
		f := s.frontOf(c)
		f.gen, f.l1d, f.l2, f.pf = cg.Clone(), l1d, l2, c.pf.clone()
		reps[i] = &replica{f: f, scratch: new(batch)}
	}
	return reps, nil
}

// beginROIMerge is beginROI minus the private-cache stats resets, which
// the workers (and replicas) apply at their own sequence boundaries.
func (s *System) beginROIMerge() {
	s.phase = snapshot.PhaseROI
	s.llc.ResetStats()
	s.dram.ResetCounters()
	for _, c := range s.cores {
		c.roiStartClock = c.clock
		c.roiStartRetired = c.retired
		c.target = c.retired + s.roi
		c.done = false
	}
}

// runPhasesParallel is runPhases with the fronts run ahead by worker
// goroutines (one per core; the Go scheduler multiplexes them over
// however many CPUs the process has) and the shared state replayed here
// on the caller's goroutine. Every result and every snapshot is
// byte-identical to the serial path.
func (s *System) runPhasesParallel(ctx context.Context) (Results, error) {
	var reps []*replica
	if s.auto != nil {
		var err error
		reps, err = s.buildReplicas()
		if err != nil {
			return Results{}, err
		}
		s.snapHook = func(i int) frontView {
			f := reps[i].f
			return frontView{gen: f.gen, l1d: f.l1d, l2: f.l2, pf: f.pf}
		}
		defer func() { s.snapHook = nil }()
	}

	rs := newRecordSource(len(s.cores))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, c := range s.cores {
		f := s.frontOf(c)
		wg.Add(1)
		go func(i int, f *front) {
			defer wg.Done()
			workerRun(f, rs.rings[i], stop, &rs.errs[i])
		}(i, f)
	}
	var stopOnce sync.Once
	shutdown := func() { stopOnce.Do(func() { close(stop); wg.Wait() }) }
	defer shutdown()

	if s.phase == snapshot.PhaseWarmup {
		if err := s.driveParallel(ctx, rs, reps); err != nil {
			return Results{}, err
		}
		s.beginROIMerge()
	}
	if err := s.driveParallel(ctx, rs, reps); err != nil {
		return Results{}, err
	}
	s.reportProgress()
	// The workers have produced every record the budgets allow and the
	// merge consumed them all, so the live fronts hold the exact
	// end-of-run private state. Join before reading it.
	shutdown()
	return s.collect(), nil
}

// driveParallel is the drive loop with step(next) replaced by a record
// replay. Laggard selection, the runner-up threshold, the steps counter,
// and every poll cadence are identical, so snapshots fire at the same
// global step with the same state.
func (s *System) driveParallel(ctx context.Context, rs *recordSource, reps []*replica) error {
	save := func() error {
		for i, r := range reps {
			r.advanceTo(rs.consumed[i], s.phase)
		}
		return s.saveAuto()
	}
	var steps uint64
	for {
		var next, ru *core
		nextIdx, ruIdx := -1, -1
		for i, c := range s.cores {
			if c.done {
				continue
			}
			switch {
			case next == nil || c.clock < next.clock:
				ru, ruIdx = next, nextIdx
				next, nextIdx = c, i
			case ru == nil || c.clock < ru.clock:
				ru, ruIdx = c, i
			}
		}
		if next == nil {
			return nil
		}
		for ru == nil || next.clock < ru.clock || (next.clock == ru.clock && nextIdx < ruIdx) {
			steps++
			if steps%cancelCheckPeriod == 0 {
				s.reportProgress()
				if s.auto != nil && s.auto.Trigger.Fired() {
					if err := save(); err != nil {
						return err
					}
					return snapshot.ErrStopped
				}
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if s.auto != nil && s.auto.Every > 0 && steps%s.auto.Every == 0 {
				if err := save(); err != nil {
					return err
				}
			}
			if invariant.Enabled {
				if invariant.Every(steps, llcAuditPeriod) {
					if a, ok := s.llc.(auditor); ok {
						invariant.CheckErr(a.Audit())
					}
				}
			}
			gap, kind, ops, err := rs.next(next.id)
			if err != nil {
				return err
			}
			s.applyStep(next, gap, kind, ops)
			if next.retired >= next.target {
				next.drain()
				next.done = true
				break
			}
		}
	}
}
