package cachesim

import (
	"testing"

	"mayacache/internal/baseline"
	"mayacache/internal/trace"
)

func TestPrefetcherDetectsUnitStride(t *testing.T) {
	p := newPrefetcher(PrefetchConfig{Degree: 2})
	var got []uint64
	for l := uint64(0); l < 10; l++ {
		got = p.observe(l)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("unit-stride prediction = %v, want [10 11]", got)
	}
}

func TestPrefetcherDetectsLargerStride(t *testing.T) {
	p := newPrefetcher(PrefetchConfig{Degree: 1})
	var got []uint64
	for i := uint64(0); i < 8; i++ {
		got = p.observe(i * 3)
	}
	if len(got) != 1 || got[0] != 7*3+3 {
		t.Fatalf("stride-3 prediction = %v, want [24]", got)
	}
}

func TestPrefetcherIgnoresRandomAccess(t *testing.T) {
	p := newPrefetcher(PrefetchConfig{Degree: 2})
	addrs := []uint64{5, 900, 17, 4411, 2, 777, 39, 1234}
	issued := 0
	for _, a := range addrs {
		issued += len(p.observe(a))
	}
	if issued != 0 {
		t.Fatalf("issued %d prefetches on a random stream", issued)
	}
}

func TestPrefetcherStrideChangeResetsConfidence(t *testing.T) {
	p := newPrefetcher(PrefetchConfig{Degree: 1})
	for l := uint64(0); l < 6; l++ {
		p.observe(l)
	}
	// Break the stride: the next observations must not predict until
	// confidence rebuilds.
	if got := p.observe(20); len(got) != 0 {
		t.Fatalf("predicted %v right after a stride break", got)
	}
	if got := p.observe(40); len(got) != 0 {
		t.Fatalf("predicted %v with one repeat of the new stride", got)
	}
}

func TestDisabledPrefetcherIsNil(t *testing.T) {
	if p := newPrefetcher(PrefetchConfig{}); p != nil {
		t.Fatal("degree-0 prefetcher not nil")
	}
	var p *prefetcher
	if p.Issued() != 0 {
		t.Fatal("nil prefetcher reports issues")
	}
}

func TestPrefetchImprovesStreaming(t *testing.T) {
	// lbm is a sequential stream: prefetching must raise its IPC.
	run := func(degree int) float64 {
		g := trace.MustGenerator(trace.MustLookup("lbm"), 0, 1)
		params := DefaultCoreParams()
		params.Prefetch = PrefetchConfig{Degree: degree}
		sys := New(Config{
			Cores: 1,
			Core:  params,
			LLC:   mustLLC(baseline.NewChecked(baseline.Config{Sets: 2048, Ways: 16, Replacement: baseline.SRRIP, Seed: 1})),
			DRAM:  DefaultDRAMConfig(),
			Seed:  1,
		}, []trace.Generator{g})
		return sys.Run(200_000, 400_000).Cores[0].IPC
	}
	off, on := run(0), run(4)
	if on <= off {
		t.Fatalf("prefetching did not help streaming: IPC %0.3f -> %0.3f", off, on)
	}
}
