package cachesim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
)

// resultsJSON renders Results deterministically for byte comparison.
func resultsJSON(t *testing.T, r Results) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelMatchesSerial proves the deterministic parallel mode's core
// claim: for every LLC design, a parallel run returns byte-identical
// Results to the serial path on the same configuration.
func TestParallelMatchesSerial(t *testing.T) {
	for _, d := range snapDesigns {
		t.Run(d.name, func(t *testing.T) {
			serial, err := Run(context.Background(), snapSystem(d.mk()),
				RunSpec{Warmup: snapWarmup, ROI: snapROI})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Run(context.Background(), snapSystem(d.mk()),
				RunSpec{Warmup: snapWarmup, ROI: snapROI, Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if s, p := resultsJSON(t, serial), resultsJSON(t, par); !bytes.Equal(s, p) {
				t.Fatalf("parallel diverged from serial:\nserial   %s\nparallel %s", s, p)
			}
		})
	}
}

// TestParallelAtGOMAXPROCS runs one design at the machine's actual worker
// count (what CI's -race leg exercises), pinning that the bit-exactness
// claim holds at whatever parallelism the hardware delivers, not only at
// the fixed fan-outs used above.
func TestParallelAtGOMAXPROCS(t *testing.T) {
	par := runtime.GOMAXPROCS(0)
	if par < 2 {
		par = 2
	}
	d := snapDesigns[0]
	serial, err := Run(context.Background(), snapSystem(d.mk()),
		RunSpec{Warmup: snapWarmup, ROI: snapROI})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Run(context.Background(), snapSystem(d.mk()),
		RunSpec{Warmup: snapWarmup, ROI: snapROI, Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	if s, pj := resultsJSON(t, serial), resultsJSON(t, p); !bytes.Equal(s, pj) {
		t.Fatalf("parallelism %d diverged from serial:\nserial   %s\nparallel %s", par, s, pj)
	}
}

// TestParallelBatchBoundaries pins bit-exactness at the ring transport's
// edge cases: budgets of 1, batchSteps-1, batchSteps, and batchSteps+1
// instructions (1, 63, 64, 65) force runs whose record streams end just
// below, exactly at, and just past a batch boundary, exercising the
// partial final publish, the exactly-full publish, and the
// one-record-into-a-fresh-batch paths on both the warmup and ROI legs.
func TestParallelBatchBoundaries(t *testing.T) {
	d := snapDesigns[0]
	for _, budget := range []uint64{1, batchSteps - 1, batchSteps, batchSteps + 1} {
		for _, par := range []int{2, 4} {
			serial, err := Run(context.Background(), snapSystem(d.mk()),
				RunSpec{Warmup: budget, ROI: budget})
			if err != nil {
				t.Fatalf("budget %d serial: %v", budget, err)
			}
			p, err := Run(context.Background(), snapSystem(d.mk()),
				RunSpec{Warmup: budget, ROI: budget, Parallelism: par})
			if err != nil {
				t.Fatalf("budget %d parallelism %d: %v", budget, par, err)
			}
			if s, pj := resultsJSON(t, serial), resultsJSON(t, p); !bytes.Equal(s, pj) {
				t.Fatalf("budget %d parallelism %d diverged from serial:\nserial   %s\nparallel %s",
					budget, par, s, pj)
			}
		}
	}
}

// runCapturing runs sys to completion while collecting every auto-snapshot
// blob the drive loop emits.
func runCapturing(t *testing.T, sys *System, par int) (Results, [][]byte) {
	t.Helper()
	var snaps [][]byte
	sys.SetAutoSnapshot(&AutoSnapshot{
		Every: 4096,
		Save: func(data []byte) error {
			snaps = append(snaps, append([]byte(nil), data...))
			return nil
		},
	})
	res, err := Run(context.Background(), sys, RunSpec{Warmup: snapWarmup, ROI: snapROI, Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return res, snaps
}

// TestParallelSnapshotsByteIdentical compares every mid-run snapshot a
// parallel run takes against the serial run's snapshot at the same step:
// same count, and byte-for-byte equal blobs. This exercises the replica
// replay machinery (workers are far ahead of the merge when each snapshot
// fires) across warmup, the phase barrier, and the ROI.
func TestParallelSnapshotsByteIdentical(t *testing.T) {
	for _, d := range snapDesigns[:2] { // maya + mirage: remap-heavy designs
		t.Run(d.name, func(t *testing.T) {
			sres, ssnaps := runCapturing(t, snapSystem(d.mk()), 1)
			pres, psnaps := runCapturing(t, snapSystem(d.mk()), 4)
			if len(ssnaps) == 0 {
				t.Fatal("serial run took no snapshots; cadence too coarse for the budgets")
			}
			if len(ssnaps) != len(psnaps) {
				t.Fatalf("snapshot count diverged: serial %d parallel %d", len(ssnaps), len(psnaps))
			}
			for i := range ssnaps {
				if !bytes.Equal(ssnaps[i], psnaps[i]) {
					t.Fatalf("snapshot %d/%d differs between serial and parallel", i+1, len(ssnaps))
				}
			}
			if s, p := resultsJSON(t, sres), resultsJSON(t, pres); !bytes.Equal(s, p) {
				t.Fatalf("results diverged:\nserial   %s\nparallel %s", s, p)
			}
		})
	}
}

// TestParallelResumeFromSerialSnapshot restores a serial mid-ROI snapshot
// and finishes it in parallel mode; the results must match finishing it
// serially. Resume is where restored done-flags, mid-phase targets, and
// partially drained windows all feed the worker/merge split.
func TestParallelResumeFromSerialSnapshot(t *testing.T) {
	d := snapDesigns[0]
	state := captureMidROI(t, snapSystem(d.mk()))

	finish := func(par int) Results {
		sys := snapSystem(d.mk())
		if err := sys.RestoreState(state); err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), sys, RunSpec{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if s, p := resultsJSON(t, finish(1)), resultsJSON(t, finish(4)); !bytes.Equal(s, p) {
		t.Fatalf("resumed results diverged:\nserial   %s\nparallel %s", s, p)
	}
}

// TestErrSpent pins the reuse-after-failure contract: a cancelled run
// leaves the System spent, every further run attempt fails fast with
// ErrSpent (instead of silently continuing from mid-run garbage), and
// RestoreState clears the mark.
func TestErrSpent(t *testing.T) {
	d := snapDesigns[2]
	sys := snapSystem(d.mk())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunCtx(ctx, snapWarmup, snapROI); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}

	if _, err := sys.RunCtx(context.Background(), snapWarmup, snapROI); !errors.Is(err, ErrSpent) {
		t.Fatalf("RunCtx after cancel returned %v, want ErrSpent", err)
	}
	if _, err := sys.ResumeCtx(context.Background()); !errors.Is(err, ErrSpent) {
		t.Fatalf("ResumeCtx after cancel returned %v, want ErrSpent", err)
	}
	if _, err := Run(context.Background(), sys, RunSpec{Warmup: 1, ROI: 1}); !errors.Is(err, ErrSpent) {
		t.Fatalf("Run after cancel returned %v, want ErrSpent", err)
	}

	// A restore installs coherent state: the System is usable again.
	state := captureMidROI(t, snapSystem(d.mk()))
	if err := sys.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), sys, RunSpec{}); err != nil {
		t.Fatalf("run after restore returned %v", err)
	}
}

// TestParallelSpentOnCancel checks the parallel path honours the same
// lifecycle: cancellation mid-run marks the System spent and joins the
// worker goroutines rather than leaking them.
func TestParallelSpentOnCancel(t *testing.T) {
	sys := snapSystem(snapDesigns[2].mk())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, sys, RunSpec{Warmup: snapWarmup, ROI: snapROI, Parallelism: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallel run returned %v", err)
	}
	if _, err := Run(context.Background(), sys, RunSpec{Warmup: 1, ROI: 1, Parallelism: 4}); !errors.Is(err, ErrSpent) {
		t.Fatalf("parallel run after cancel returned %v, want ErrSpent", err)
	}
}
