package cachesim

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"mayacache/internal/mc"
	"mayacache/internal/snapshot"
)

// TestProgressTracking: a tracker attached to the context reaches
// RunResumable's simulation and accumulates every retired instruction
// (warmup and ROI, all cores). The drive loop can overshoot a core's
// target by the final event's gap, so the assertion is total-or-slightly-
// more, never less.
func TestProgressTracking(t *testing.T) {
	const total = 2 * (snapWarmup + snapROI) // two cores
	tr := mc.NewTracker(total, nil)
	ctx := mc.WithTracker(context.Background(), tr)
	if _, err := RunResumable(ctx, snapSystem(snapDesigns[2].mk()), nil, "mix", snapWarmup, snapROI); err != nil {
		t.Fatal(err)
	}
	if done := tr.Done(); done < total || done > total+total/2 {
		t.Fatalf("tracker done = %d, want in [%d, %d]", done, total, total+total/2)
	}
}

// TestProgressTrackingResume: a resumed run reports only the instructions
// retired in the resuming process — the tracker baseline is the restored
// state, so an interrupted-then-resumed session's two trackers sum to
// roughly one full run, not more.
func TestProgressTrackingResume(t *testing.T) {
	const total = 2 * (snapWarmup + snapROI)
	path := filepath.Join(t.TempDir(), snapshot.CellFileName("cell"))
	var trig snapshot.Trigger
	cell, err := snapshot.OpenCell(snapshot.CellSpec{
		Path: path, Every: 4096, Trigger: &trig,
		OnSave: func(saves int) {
			if saves >= 3 {
				trig.Fire()
			}
		},
	}, "cell")
	if err != nil {
		t.Fatal(err)
	}
	tr1 := mc.NewTracker(total, nil)
	_, err = RunResumable(mc.WithTracker(context.Background(), tr1),
		snapSystem(snapDesigns[0].mk()), cell, "mix", snapWarmup, snapROI)
	if !errors.Is(err, snapshot.ErrStopped) {
		t.Fatalf("interrupted run returned %v, want ErrStopped", err)
	}
	first := tr1.Done()
	if first == 0 || first >= total {
		t.Fatalf("interrupted run reported %d of %d", first, total)
	}

	cell2, err := snapshot.OpenCell(snapshot.CellSpec{Path: path}, "cell")
	if err != nil {
		t.Fatal(err)
	}
	tr2 := mc.NewTracker(total, nil)
	if _, err := RunResumable(mc.WithTracker(context.Background(), tr2),
		snapSystem(snapDesigns[0].mk()), cell2, "mix", snapWarmup, snapROI); err != nil {
		t.Fatal(err)
	}
	second := tr2.Done()
	if second == 0 || second >= total {
		t.Fatalf("resumed run reported %d of %d", second, total)
	}
	// The snapshot cadence means the resume replays at most one interval;
	// the two epochs cover the run without double-counting more than that.
	if sum := first + second; sum < total || sum > total+total/2 {
		t.Fatalf("epochs sum to %d, want about %d", sum, total)
	}
}
