package cachesim

// The unified run entrypoint. Historically the package grew four ways to
// run a System — Run, RunCtx, ResumeCtx, and RunResumable — each adding
// one orthogonal capability (panics→errors→resume→cell persistence). A
// RunSpec expresses all of them, plus the deterministic parallel mode, in
// one call; the legacy entrypoints remain as thin deprecated wrappers.

import (
	"context"
	"errors"
	"fmt"

	"mayacache/internal/mc"
	"mayacache/internal/snapshot"
)

// ErrSpent reports a run attempt on a System whose state was consumed by
// an earlier failed or cancelled run. Simulation state is never rewound
// on error, so continuing would compute garbage; rebuild the System or
// RestoreState a snapshot into it instead.
var ErrSpent = errors.New("cachesim: system state consumed by a failed run; rebuild or restore before running again")

// RunSpec describes one simulation run.
type RunSpec struct {
	// Warmup and ROI are the per-core instruction budgets for the two
	// phases. Ignored when the System resumes from restored or cell state,
	// which carries its own budgets.
	Warmup, ROI uint64

	// Cell, when non-nil, runs under the sweep-cell snapshot protocol: a
	// previously recorded result for Sub is returned without simulating,
	// an in-progress snapshot is restored and continued, and the run
	// saves resumable snapshots on the cell's cadence and deadline
	// trigger. A nil Cell (or a System whose design or workloads cannot
	// serialize) runs plain.
	Cell *snapshot.Cell
	// Sub is the sub-run key within Cell.
	Sub string

	// Parallelism selects the execution mode: <= 1 runs the exact serial
	// code path; > 1 runs each core's private front on its own goroutine
	// with a deterministic merge of the shared state (see front.go).
	// Results and snapshots are byte-identical either way — this is a
	// scheduling knob, never a model parameter.
	Parallelism int

	// SnapshotEvery, when > 0, overrides the cell's auto-snapshot cadence
	// in drive-loop steps. Only meaningful with a Cell.
	SnapshotEvery uint64
}

// Run executes one simulation run described by spec. It subsumes the
// legacy entrypoints:
//
//	sys.Run(w, r)                      → Run(ctx, sys, RunSpec{Warmup: w, ROI: r})
//	sys.RunCtx(ctx, w, r)              → same
//	sys.RestoreState(b); sys.ResumeCtx → sys.RestoreState(b); Run(ctx, sys, RunSpec{})
//	RunResumable(ctx, sys, cell, sub, w, r) → Run(ctx, sys, RunSpec{Warmup: w, ROI: r, Cell: cell, Sub: sub})
//
// A tracker on the context (mc.WithTracker) streams retired-instruction
// progress on every path. A System whose prior run failed returns
// ErrSpent. On a deadline stop the partial state has been persisted to
// the Cell and the error is snapshot.ErrStopped.
func Run(ctx context.Context, sys *System, spec RunSpec) (Results, error) {
	tracker := mc.TrackerFrom(ctx)
	if spec.Cell == nil || !sys.Snapshottable() {
		sys.SetProgress(tracker)
		if sys.started {
			return sys.resumeWith(ctx, spec.Parallelism)
		}
		return sys.runWith(ctx, spec.Warmup, spec.ROI, spec.Parallelism)
	}

	var cached Results
	if ok, err := spec.Cell.LookupResult(spec.Sub, &cached); err != nil {
		return Results{}, err
	} else if ok {
		return cached, nil
	}
	every := spec.Cell.Every()
	if spec.SnapshotEvery > 0 {
		every = spec.SnapshotEvery
	}
	sys.SetAutoSnapshot(&AutoSnapshot{
		Every:   every,
		Trigger: spec.Cell.Trigger(),
		Save:    func(state []byte) error { return spec.Cell.SaveSystem(spec.Sub, state) },
	})
	var res Results
	var err error
	if st := spec.Cell.SystemState(spec.Sub); st != nil {
		if rerr := sys.RestoreState(st); rerr != nil {
			return Results{}, fmt.Errorf("resume %q: %w", spec.Sub, rerr)
		}
		// Installed after the restore so the tracker baseline is the
		// resumed state: only instructions retired here are reported.
		sys.SetProgress(tracker)
		res, err = sys.resumeWith(ctx, spec.Parallelism)
	} else {
		sys.SetProgress(tracker)
		res, err = sys.runWith(ctx, spec.Warmup, spec.ROI, spec.Parallelism)
	}
	if err != nil {
		return Results{}, err
	}
	if err := spec.Cell.RecordResult(spec.Sub, res); err != nil {
		return Results{}, err
	}
	return res, nil
}
