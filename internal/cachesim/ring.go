package cachesim

// SPSC ring transport for the deterministic parallel run mode. Each core's
// front worker publishes fixed-size batches of step records into a
// single-producer/single-consumer ring the merge thread drains in order.
// Compared to a buffered channel of pooled chunks, the ring
//
//   - amortizes one synchronization (two atomic ops, usually no park) over
//     batchSteps private steps instead of paying a channel send/receive —
//     a lock, a copy, and often a goroutine wakeup — per transfer, and
//   - reuses its slots in place, so the steady-state drive loop moves no
//     memory through the allocator at all (no pool, no per-chunk churn).
//
// Order is trivially preserved: one producer appends at tail, one consumer
// reads at head, and slot i is only ever reused after the consumer
// advances past it. The merge's laggard replay order is therefore exactly
// what it was over channels, which is what keeps Results and mid-run
// snapshot blobs byte-identical to the serial run.

import "sync/atomic"

// batchSteps is the number of step records per published batch: one
// producer/consumer synchronization per 64 steps.
const batchSteps = 64

// ringSlots is the ring capacity in batches (power of two). It bounds the
// worker's run-ahead to ringSlots*batchSteps steps, which in turn bounds
// the replay distance snapshot replicas cover.
const ringSlots = 32

// batch is one slot's worth of consecutive step records for one core,
// struct-of-arrays like the serial step works: step i's shared ops are the
// next nOps[i] entries of ops, in replay order. The fixed-size lanes live
// inline in the slot; ops is the only dynamic part and is reused in place,
// so after the first few batches grow it, publishing allocates nothing.
type batch struct {
	n     int
	gaps  [batchSteps]int32
	kinds [batchSteps]uint8
	nOps  [batchSteps]uint16
	ops   []sharedOp
}

func (b *batch) reset() {
	b.n = 0
	b.ops = b.ops[:0]
}

// ring is the SPSC batch queue between one front worker (producer) and
// the merge thread (consumer). head/tail are free-running slot counters;
// tail-head is the number of published, unconsumed batches. The atomic
// stores/loads carry the happens-before edges: everything the producer
// wrote into a slot before its tail.Add is visible to the consumer after
// it loads that tail value (and symmetrically for head on slot reuse).
//
// Parking is cooperative, not spinning: when the producer finds the ring
// full (or the consumer finds it empty) it parks on a capacity-1 wake
// channel the other side tickles after every advance. The check-park-
// recheck loop makes lost wakeups harmless — a signal raced between the
// check and the park is sitting in the channel buffer and wakes the
// parker immediately for a recheck.
type ring struct {
	slots    [ringSlots]batch
	head     atomic.Uint64 // next slot the consumer reads
	tail     atomic.Uint64 // next slot the producer fills
	prodWake chan struct{} // consumer → producer: a slot was freed
	consWake chan struct{} // producer → consumer: a batch was published
	done     chan struct{} // closed by the producer after its final publish
}

func newRing() *ring {
	r := &ring{
		prodWake: make(chan struct{}, 1),
		consWake: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	// Size every slot's op lane up front: a step rarely records more than
	// a handful of shared ops (demand + a few writebacks + prefetches), so
	// four per step covers all but pathological batches and the drive loop
	// stays allocation-free in steady state (see bench.TestMacroDriveZeroAlloc).
	for i := range r.slots {
		r.slots[i].ops = make([]sharedOp, 0, 4*batchSteps)
	}
	return r
}

func wake(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default: // a wakeup is already pending; one is enough
	}
}

// acquire returns the producer's next writable slot, reset and ready to
// fill, parking while the ring is full. It returns nil when stop closes
// first — the merge abandoned the run and will never free another slot.
func (r *ring) acquire(stop <-chan struct{}) *batch {
	for r.tail.Load()-r.head.Load() == ringSlots {
		select {
		case <-r.prodWake:
		case <-stop:
			return nil
		}
	}
	b := &r.slots[r.tail.Load()&(ringSlots-1)]
	b.reset()
	return b
}

// publish makes the slot returned by the last acquire visible to the
// consumer.
func (r *ring) publish() {
	r.tail.Add(1)
	wake(r.consWake)
}

// close marks the stream complete. The producer's error slot (see
// recordSource.errs) must be written before close, so a consumer that
// observes the drained, closed ring also observes the error.
func (r *ring) close() {
	close(r.done)
}

// consume returns the consumer's next published batch, parking while the
// ring is empty. It returns nil only when the ring is closed and fully
// drained; batches published before close are always delivered first.
func (r *ring) consume() *batch {
	for {
		if r.head.Load() != r.tail.Load() {
			return &r.slots[r.head.Load()&(ringSlots-1)]
		}
		select {
		case <-r.consWake:
		case <-r.done:
			if r.head.Load() == r.tail.Load() {
				return nil
			}
		}
	}
}

// release frees the batch returned by the last consume for reuse.
func (r *ring) release() {
	r.head.Add(1)
	wake(r.prodWake)
}
