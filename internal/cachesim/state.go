package cachesim

import (
	"context"
	"fmt"
	"strings"

	"mayacache/internal/baseline"
	"mayacache/internal/snapshot"
	"mayacache/internal/trace"
)

// SystemKind identifies a full-System snapshot container.
const SystemKind = "mayasim/system/v1"

// maxOutstanding bounds a decoded per-core outstanding window. The live
// window never exceeds MSHRs entries plus the one access being appended.
func (s *System) maxOutstanding() int { return s.cfg.Core.MSHRs + 1 }

// geometry packs the identifying private-hierarchy and DRAM shape into the
// header's geometry words. LLC geometry is not duplicated here: the LLC
// section's own fixed counts reject any mismatched design shape.
func (s *System) geometry() [6]uint64 {
	return [6]uint64{
		uint64(s.cfg.Core.L1DSets), uint64(s.cfg.Core.L1DWays),
		uint64(s.cfg.Core.L2Sets), uint64(s.cfg.Core.L2Ways),
		uint64(s.cfg.DRAM.Channels), uint64(s.cfg.DRAM.BanksPerChannel),
	}
}

// workloadNames joins per-core generator names for header identification.
func (s *System) workloadNames() string {
	names := make([]string, len(s.cores))
	for i, c := range s.cores {
		names[i] = c.gen.Name()
	}
	return strings.Join(names, ",")
}

// frontView is the slice of a core EncodeState serializes from a
// position-dependent source: the core itself in serial runs, a replica
// advanced to the merge position in parallel runs (workers have mutated
// the live front past the point being snapshotted).
type frontView struct {
	gen trace.Generator
	l1d *baseline.SetAssoc
	l2  *baseline.SetAssoc
	pf  *prefetcher
}

func (s *System) snapFront(i int) frontView {
	if s.snapHook != nil {
		return s.snapHook(i)
	}
	c := s.cores[i]
	return frontView{gen: c.gen, l1d: c.l1d, l2: c.l2, pf: c.pf}
}

// Snapshottable reports whether every pluggable component (the LLC design
// and each workload generator) supports state serialization. Private
// caches, DRAM, and prefetchers always do.
func (s *System) Snapshottable() bool {
	if _, ok := s.llc.(snapshot.Stateful); !ok {
		return false
	}
	for _, c := range s.cores {
		if _, ok := c.gen.(snapshot.Stateful); !ok {
			return false
		}
	}
	return true
}

// saveAuto encodes the current state and hands it to the auto-snapshot
// sink.
func (s *System) saveAuto() error {
	state, err := s.EncodeState()
	if err != nil {
		return err
	}
	return s.auto.Save(state)
}

// EncodeState serializes the complete simulation state — run progress,
// every core's pipeline/cache/prefetcher/workload state, DRAM timing, and
// the shared LLC — into a snapshot container. Encoding only reads state,
// so taking a snapshot never perturbs the simulation.
func (s *System) EncodeState() ([]byte, error) {
	llcS, ok := s.llc.(snapshot.Stateful)
	if !ok {
		return nil, fmt.Errorf("cachesim: LLC design %q does not support snapshots", s.llc.Name())
	}
	var progress uint64
	for _, c := range s.cores {
		progress += c.retired
	}
	snap := snapshot.NewSnapshot(snapshot.Header{
		Kind:      SystemKind,
		Seed:      s.cfg.Seed,
		Design:    s.llc.Name(),
		Workloads: s.workloadNames(),
		Cores:     s.cfg.Cores,
		Geometry:  s.geometry(),
		Warmup:    s.warmup,
		ROI:       s.roi,
		Phase:     s.phase,
		Progress:  progress,
	})

	var ce snapshot.Encoder
	for i, c := range s.cores {
		c.saveState(&ce, s.snapFront(i).pf)
	}
	snap.Add("cores", ce.Data())

	var pe snapshot.Encoder
	for i := range s.cores {
		v := s.snapFront(i)
		v.l1d.SaveState(&pe)
		v.l2.SaveState(&pe)
	}
	snap.Add("private", pe.Data())

	var ge snapshot.Encoder
	for i := range s.cores {
		g := s.snapFront(i).gen
		gen, ok := g.(snapshot.Stateful)
		if !ok {
			return nil, fmt.Errorf("cachesim: workload %q does not support snapshots", g.Name())
		}
		gen.SaveState(&ge)
	}
	snap.Add("gens", ge.Data())

	var de snapshot.Encoder
	s.dram.SaveState(&de)
	snap.Add("dram", de.Data())

	var le snapshot.Encoder
	llcS.SaveState(&le)
	snap.Add("llc", le.Data())

	return snap.Encode(), nil
}

// RestoreState loads a snapshot into a freshly constructed System with
// identical configuration. Foreign snapshots are rejected with a
// MismatchError naming the first disagreeing field; damaged ones with a
// CorruptError. On success the System is ready for ResumeCtx.
func (s *System) RestoreState(data []byte) error {
	snap, err := snapshot.Decode(data)
	if err != nil {
		return err
	}
	h := &snap.Header
	if h.Kind != SystemKind {
		return &snapshot.MismatchError{Field: "kind", Want: SystemKind, Got: h.Kind}
	}
	if h.Seed != s.cfg.Seed {
		return &snapshot.MismatchError{Field: "seed",
			Want: fmt.Sprint(s.cfg.Seed), Got: fmt.Sprint(h.Seed)}
	}
	if h.Design != s.llc.Name() {
		return &snapshot.MismatchError{Field: "design", Want: s.llc.Name(), Got: h.Design}
	}
	if h.Cores != s.cfg.Cores {
		return &snapshot.MismatchError{Field: "cores",
			Want: fmt.Sprint(s.cfg.Cores), Got: fmt.Sprint(h.Cores)}
	}
	if want := s.workloadNames(); h.Workloads != want {
		return &snapshot.MismatchError{Field: "workloads", Want: want, Got: h.Workloads}
	}
	if want := s.geometry(); h.Geometry != want {
		return &snapshot.MismatchError{Field: "geometry",
			Want: fmt.Sprint(want), Got: fmt.Sprint(h.Geometry)}
	}
	llcS, ok := s.llc.(snapshot.Stateful)
	if !ok {
		return fmt.Errorf("cachesim: LLC design %q does not support snapshots", s.llc.Name())
	}

	section := func(name string) (*snapshot.Decoder, error) {
		sec := snap.Section(name)
		if sec == nil {
			return nil, &snapshot.CorruptError{At: "section " + name, Detail: "missing"}
		}
		return snapshot.NewDecoder(sec), nil
	}
	finish := func(d *snapshot.Decoder, name string) error {
		if err := d.Finish(); err != nil {
			return fmt.Errorf("section %s: %w", name, err)
		}
		return nil
	}

	cd, err := section("cores")
	if err != nil {
		return err
	}
	for _, c := range s.cores {
		if err := c.restoreState(cd, s); err != nil {
			return err
		}
	}
	if err := finish(cd, "cores"); err != nil {
		return err
	}

	pd, err := section("private")
	if err != nil {
		return err
	}
	for _, c := range s.cores {
		if err := c.l1d.RestoreState(pd); err != nil {
			return err
		}
		if err := c.l2.RestoreState(pd); err != nil {
			return err
		}
	}
	if err := finish(pd, "private"); err != nil {
		return err
	}

	gd, err := section("gens")
	if err != nil {
		return err
	}
	for _, c := range s.cores {
		gen, ok := c.gen.(snapshot.Stateful)
		if !ok {
			return fmt.Errorf("cachesim: workload %q does not support snapshots", c.gen.Name())
		}
		if err := gen.RestoreState(gd); err != nil {
			return err
		}
	}
	if err := finish(gd, "gens"); err != nil {
		return err
	}

	dd, err := section("dram")
	if err != nil {
		return err
	}
	if err := s.dram.RestoreState(dd); err != nil {
		return err
	}
	if err := finish(dd, "dram"); err != nil {
		return err
	}

	ld, err := section("llc")
	if err != nil {
		return err
	}
	if err := llcS.RestoreState(ld); err != nil {
		return err
	}
	if err := finish(ld, "llc"); err != nil {
		return err
	}

	s.warmup, s.roi, s.phase = h.Warmup, h.ROI, h.Phase
	s.started = true
	s.spent = false // the restored state is coherent; runs may proceed
	return nil
}

// saveState serializes one core's pipeline scheduling state and the
// given prefetcher (the core's own in serial runs, a replica's in
// parallel runs — pf lives in the timing-independent front, unlike the
// merge-owned fields above it). The outstanding window is written
// compacted (from outHead) — only the live entries affect future
// behaviour.
func (c *core) saveState(e *snapshot.Encoder, pf *prefetcher) {
	e.U64(c.clock)
	e.Int(c.subIssue)
	win := c.outstanding[c.outHead:]
	e.Count(len(win))
	for _, t := range win {
		e.U64(t)
	}
	e.U64(c.retired)
	e.U64(c.target)
	e.Bool(c.done)
	e.U64(c.roiStartClock)
	e.U64(c.roiStartRetired)
	if pf == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Count(len(pf.entries))
	for i := range pf.entries {
		se := &pf.entries[i]
		e.U64(se.region)
		e.I32(se.lastOffset)
		e.I32(se.stride)
		e.I8(se.confidence)
		e.Bool(se.valid)
	}
	e.U64(pf.issued)
}

func (c *core) restoreState(d *snapshot.Decoder, s *System) error {
	c.clock = d.U64()
	c.subIssue = d.Int()
	n := d.Count(s.maxOutstanding())
	c.outstanding = c.outstanding[:0]
	c.outHead = 0
	for i := 0; i < n; i++ {
		c.outstanding = append(c.outstanding, d.U64())
	}
	c.retired = d.U64()
	c.target = d.U64()
	c.done = d.Bool()
	c.roiStartClock = d.U64()
	c.roiStartRetired = d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if c.subIssue < 0 || c.subIssue >= s.cfg.Core.RetireWidth {
		d.Fail("core", "subIssue %d outside retire width %d", c.subIssue, s.cfg.Core.RetireWidth)
		return d.Err()
	}
	if c.roiStartClock > c.clock || c.roiStartRetired > c.retired {
		d.Fail("core", "ROI start beyond current progress")
		return d.Err()
	}
	hasPF := d.Bool()
	if hasPF != (c.pf != nil) {
		d.Fail("core", "prefetcher presence mismatch")
		return d.Err()
	}
	if !hasPF {
		return d.Err()
	}
	if !d.FixedCount(len(c.pf.entries), "prefetch table") {
		return d.Err()
	}
	for i := range c.pf.entries {
		se := &c.pf.entries[i]
		se.region = d.U64()
		se.lastOffset = d.I32()
		se.stride = d.I32()
		se.confidence = d.I8()
		se.valid = d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		if se.confidence < 0 || se.confidence > 4 {
			d.Fail("prefetch table", "entry %d confidence %d out of range", i, se.confidence)
			return d.Err()
		}
	}
	c.pf.issued = d.U64()
	return d.Err()
}

// SaveState serializes the DRAM timing state and counters.
func (d *DRAM) SaveState(e *snapshot.Encoder) {
	e.Count(len(d.banks))
	for i := range d.banks {
		b := &d.banks[i]
		e.U64(b.openRow)
		e.Bool(b.hasRow)
		e.U64(b.nextFree)
	}
	e.Count(len(d.chanFree))
	for _, v := range d.chanFree {
		e.U64(v)
	}
	e.U64(d.reads)
	e.U64(d.writes)
	e.U64(d.rowHits)
	e.U64(d.rowMisses)
}

// RestoreState implements snapshot.Stateful for the DRAM model.
func (d *DRAM) RestoreState(dec *snapshot.Decoder) error {
	if dec.FixedCount(len(d.banks), "dram banks") {
		for i := range d.banks {
			b := &d.banks[i]
			b.openRow = dec.U64()
			b.hasRow = dec.Bool()
			b.nextFree = dec.U64()
		}
	}
	if dec.FixedCount(len(d.chanFree), "dram channels") {
		for i := range d.chanFree {
			d.chanFree[i] = dec.U64()
		}
	}
	d.reads = dec.U64()
	d.writes = dec.U64()
	d.rowHits = dec.U64()
	d.rowMisses = dec.U64()
	return dec.Err()
}

var _ snapshot.Stateful = (*DRAM)(nil)

// RunResumable runs one sub-run of a sweep cell under the cell's snapshot
// protocol:
//
//   - a previously completed sub-run is served from its recorded result
//     without simulating;
//   - an in-progress snapshot for this sub-run is restored and continued;
//   - otherwise the run starts fresh with the cell's auto-snapshot cadence
//     and deadline trigger wired in.
//
// A nil cell, or a system whose design or workloads cannot serialize,
// degrades to a plain RunCtx. On a deadline stop the partial state has
// been persisted and the error is snapshot.ErrStopped.
//
// Deprecated: use Run with a RunSpec carrying Cell and Sub.
func RunResumable(ctx context.Context, sys *System, cell *snapshot.Cell, sub string, warmup, roi uint64) (Results, error) {
	return Run(ctx, sys, RunSpec{Warmup: warmup, ROI: roi, Cell: cell, Sub: sub})
}
