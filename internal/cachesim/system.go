// Package cachesim is the trace-driven, cycle-approximate multi-core
// simulator this reproduction uses in place of ChampSim. It models the
// paper's Table V system: out-of-order cores abstracted as an
// issue/retire-width pipeline with a 512-entry ROB window and MSHR-bounded
// memory-level parallelism, per-core L1D and L2 caches, a shared pluggable
// LLC (any cachemodel.LLC), and a banked DDR4-like DRAM.
//
// Fidelity notes (see DESIGN.md §4): instruction fetch is assumed perfect
// (no L1I model — the synthetic traces carry no code addresses), timing is
// approximate rather than cycle-accurate, and cores interleave on their
// local clocks. The evaluation's comparisons are between LLC designs under
// identical everything-else, which this preserves.
package cachesim

import (
	"context"
	"fmt"
	"math/bits"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/invariant"
	"mayacache/internal/mc"
	"mayacache/internal/snapshot"
	"mayacache/internal/trace"
)

// llcAuditPeriod is how often (in drive-loop steps) a mayacheck build
// audits the shared LLC's structural invariants.
const llcAuditPeriod = 1 << 16

// cancelCheckPeriod is how often (in drive-loop steps) the simulation
// polls its context for cancellation. Checking every step would put an
// atomic load on the hot path; every 8K steps bounds the cancellation
// latency to well under a millisecond of wall time while costing nothing
// measurable.
const cancelCheckPeriod = 1 << 13

// auditor is implemented by LLC designs that can self-verify (Maya,
// Mirage); the drive loop audits them periodically under -tags mayacheck.
type auditor interface {
	Audit() error
}

// CoreParams describes one core and its private hierarchy (Table V).
type CoreParams struct {
	IssueWidth  int // instructions fetched/issued per cycle (6)
	RetireWidth int // instructions retired per cycle (4; bounds gap cost)
	ROB         int // reorder-buffer entries (512)
	MSHRs       int // outstanding LLC-bound misses per core (64)

	L1DSets, L1DWays int
	L1DLatency       uint64 // 5 cycles

	L2Sets, L2Ways int
	L2Latency      uint64 // 10 cycles

	LLCLatency uint64 // 24 cycles base

	// Prefetch configures the L1D stride prefetcher (IPCP substitute);
	// zero Degree disables it.
	Prefetch PrefetchConfig
}

// DefaultCoreParams returns the paper's core configuration. The 48KB
// 12-way L1D and 512KB 8-way L2 match Table V.
func DefaultCoreParams() CoreParams {
	return CoreParams{
		IssueWidth:  6,
		RetireWidth: 4,
		ROB:         512,
		MSHRs:       64,
		L1DSets:     64, L1DWays: 12, L1DLatency: 5,
		L2Sets: 1024, L2Ways: 8, L2Latency: 10,
		LLCLatency: 24,
	}
}

// Config assembles a full system.
type Config struct {
	Cores int
	Core  CoreParams
	LLC   cachemodel.LLC
	DRAM  DRAMConfig
	// Seed drives private-cache policy randomness.
	Seed uint64
}

// core holds one core's simulation state.
type core struct {
	id    int
	gen   trace.Generator
	l1d   *baseline.SetAssoc
	l2    *baseline.SetAssoc
	clock uint64
	// subIssue accumulates fractional cycles from gap instructions.
	subIssue int
	// outstanding holds completion times of in-flight long-latency
	// accesses (FIFO; the window models ROB/MSHR-bounded MLP). head
	// indexes the oldest entry; the slice is compacted when it drifts.
	outstanding []uint64
	outHead     int
	//mayavet:ignore snapshotfields -- saved through saveState's pf parameter (parallel runs substitute a snapshot replica's prefetcher)
	pf *prefetcher
	retired     uint64
	target      uint64
	done        bool
	// roiStart* snapshot the ROI beginning for IPC computation.
	roiStartClock   uint64
	roiStartRetired uint64
}

// System is a runnable multi-core simulation.
type System struct {
	cfg   Config
	cores []*core
	llc   cachemodel.LLC
	dram  *DRAM

	// Run-progress state: which phase the current run is in and its
	// per-core instruction budgets. Serialized by EncodeState so a
	// restored System can resume mid-phase.
	warmup, roi uint64
	phase       uint8 // snapshot.PhaseWarmup or snapshot.PhaseROI
	started     bool  // a run is in progress (RunCtx began or RestoreState succeeded)
	// spent marks the state as consumed by a failed or cancelled run:
	// simulation state is never rewound, so continuing from it would
	// silently compute garbage. Run entrypoints return ErrSpent instead;
	// RestoreState clears the mark (a restore installs coherent state).
	spent bool

	auto *AutoSnapshot
	// snapHook, when set (parallel runs with snapshots armed), redirects
	// EncodeState's view of each core's private front to a replica at the
	// merge's replay position; see parallel.go.
	snapHook func(i int) frontView

	// Progress reporting (not serialized: a restored System starts a new
	// tracker epoch; progressSent rebases on the restored retired counts
	// at the first report).
	progress     *mc.Tracker
	progressSent uint64
}

// AutoSnapshot configures in-run state capture. The drive loop saves the
// encoded System every Every steps (0 disables periodic saves) and, when
// Trigger fires, writes one final snapshot and stops with
// snapshot.ErrStopped.
type AutoSnapshot struct {
	Every   uint64
	Trigger *snapshot.Trigger
	// Save persists one encoded snapshot; a failure aborts the run.
	Save func(state []byte) error
}

// SetAutoSnapshot installs (or, with nil, removes) auto-snapshotting for
// subsequent RunCtx/ResumeCtx calls.
func (s *System) SetAutoSnapshot(a *AutoSnapshot) { s.auto = a }

// SetProgress installs (or, with nil, removes) a progress tracker for
// subsequent RunCtx/ResumeCtx calls. The drive loop forwards cumulative
// retired-instruction deltas (summed across cores, warmup included) at
// the same cadence as the cancellation poll, plus once at phase end, so
// a streaming consumer sees liveness without a per-step atomic. Resumed
// runs report only instructions retired in this process: the tracker
// baseline is the System's state at SetProgress time.
func (s *System) SetProgress(t *mc.Tracker) {
	s.progress = t
	s.progressSent = 0
	if t != nil {
		for _, c := range s.cores {
			s.progressSent += c.retired
		}
	}
}

// reportProgress forwards retired-instruction growth to the tracker.
func (s *System) reportProgress() {
	if s.progress == nil {
		return
	}
	var sum uint64
	for _, c := range s.cores {
		sum += c.retired
	}
	if sum > s.progressSent {
		s.progress.Add(sum - s.progressSent)
		s.progressSent = sum
	}
}

// New assembles a system; workloads must have exactly cfg.Cores
// generators (one per core).
func New(cfg Config, workloads []trace.Generator) *System {
	if cfg.Cores <= 0 {
		panic("cachesim: Cores must be positive")
	}
	if len(workloads) != cfg.Cores {
		panic(fmt.Sprintf("cachesim: %d workloads for %d cores", len(workloads), cfg.Cores))
	}
	if cfg.LLC == nil {
		panic("cachesim: no LLC provided")
	}
	s := &System{cfg: cfg, llc: cfg.LLC, dram: NewDRAM(cfg.DRAM)}
	for i := 0; i < cfg.Cores; i++ {
		c := &core{
			id:          i,
			gen:         workloads[i],
			l1d:         s.newL1D(i),
			l2:          s.newL2(i),
			outstanding: make([]uint64, 0, cfg.Core.MSHRs),
			pf:          newPrefetcher(cfg.Core.Prefetch),
		}
		s.cores = append(s.cores, c)
	}
	return s
}

// newL1D builds core i's L1D. Factored so snapshot replicas (parallel
// runs) construct byte-identical twins.
func (s *System) newL1D(i int) *baseline.SetAssoc {
	return mustCache(baseline.NewChecked(baseline.Config{
		Sets: s.cfg.Core.L1DSets, Ways: s.cfg.Core.L1DWays,
		Replacement: baseline.LRU, Seed: s.cfg.Seed + uint64(i)*2 + 1,
		NamePrefix: fmt.Sprintf("L1D[%d]", i),
	}))
}

// newL2 builds core i's L2.
func (s *System) newL2(i int) *baseline.SetAssoc {
	return mustCache(baseline.NewChecked(baseline.Config{
		Sets: s.cfg.Core.L2Sets, Ways: s.cfg.Core.L2Ways,
		Replacement: baseline.LRU, Seed: s.cfg.Seed + uint64(i)*2 + 2,
		NamePrefix: fmt.Sprintf("L2[%d]", i),
	}))
}

// mustCache panics on private-cache construction errors: the geometries
// come from CoreParams, so a failure is a caller bug exactly like the
// panics New already raises for bad Config fields.
func mustCache(c *baseline.SetAssoc, err error) *baseline.SetAssoc {
	if err != nil {
		panic(fmt.Sprintf("cachesim: private cache: %v", err))
	}
	return c
}

// CoreResult reports one core's ROI statistics.
type CoreResult struct {
	Core         int
	Workload     string
	Instructions uint64
	Cycles       uint64
	IPC          float64
}

// Results aggregates a run.
type Results struct {
	Cores    []CoreResult
	LLCStats cachemodel.Stats
	// LLCAccessesROI etc. come from the design's counters (reset at ROI
	// start). DRAM row-buffer behaviour:
	DRAMReads, DRAMWrites, DRAMRowHits, DRAMRowMisses uint64
}

// MPKI returns the LLC misses per kilo-instruction over all cores.
func (r Results) MPKI() float64 {
	var instr uint64
	for _, c := range r.Cores {
		instr += c.Instructions
	}
	if instr == 0 {
		return 0
	}
	return float64(r.LLCStats.Misses) * 1000 / float64(instr)
}

// IPCSum returns the sum of per-core IPCs (throughput metric).
func (r Results) IPCSum() float64 {
	sum := 0.0
	for _, c := range r.Cores {
		sum += c.IPC
	}
	return sum
}

// Run simulates warmup instructions per core without statistics, then
// roi instructions per core with statistics, and returns the results.
//
// Deprecated: use the package-level Run with a RunSpec, which subsumes
// all four legacy entrypoints. This wrapper remains for existing callers.
func (s *System) Run(warmup, roi uint64) Results {
	res, err := s.RunCtx(context.Background(), warmup, roi)
	if err != nil {
		// Unreachable: the background context never cancels.
		panic(fmt.Sprintf("cachesim: %v", err))
	}
	return res
}

// RunCtx is Run under a context: the drive loop polls ctx every
// cancelCheckPeriod steps and abandons the simulation with ctx.Err() when
// it is cancelled, which is how the experiment harness implements per-run
// timeouts and Ctrl-C. A cancelled run returns zero Results; simulation
// state is not rewound, so any further run attempt on the same System
// returns ErrSpent.
//
// Deprecated: use the package-level Run with a RunSpec.
func (s *System) RunCtx(ctx context.Context, warmup, roi uint64) (Results, error) {
	return s.runWith(ctx, warmup, roi, 1)
}

// runWith starts a fresh run with the given per-phase budgets, serial
// when par <= 1 and in the deterministic parallel mode otherwise.
func (s *System) runWith(ctx context.Context, warmup, roi uint64, par int) (Results, error) {
	if s.spent {
		return Results{}, ErrSpent
	}
	s.warmup, s.roi = warmup, roi
	s.phase = snapshot.PhaseWarmup
	s.started = true
	for _, c := range s.cores {
		c.target = warmup
		c.done = warmup == 0
	}
	return s.runFrom(ctx, par)
}

// ResumeCtx continues a run restored by RestoreState from wherever the
// snapshot was taken — mid-warmup or mid-ROI — and returns the final
// results. Calling it on a System that has neither run nor been restored
// is an error.
//
// Deprecated: use the package-level Run with a RunSpec; a restored System
// resumes automatically.
func (s *System) ResumeCtx(ctx context.Context) (Results, error) {
	return s.resumeWith(ctx, 1)
}

func (s *System) resumeWith(ctx context.Context, par int) (Results, error) {
	if s.spent {
		return Results{}, ErrSpent
	}
	if !s.started {
		return Results{}, fmt.Errorf("cachesim: ResumeCtx before RunCtx or RestoreState")
	}
	return s.runFrom(ctx, par)
}

// runFrom drives the remaining phases of the current run and maintains
// the spent/started lifecycle: an error of any kind (cancellation,
// deadline stop, snapshot-save failure) leaves partial state behind and
// marks the System spent.
func (s *System) runFrom(ctx context.Context, par int) (Results, error) {
	var res Results
	var err error
	if par > 1 {
		res, err = s.runPhasesParallel(ctx)
	} else {
		res, err = s.runPhases(ctx)
	}
	if err != nil {
		s.spent = true
		return Results{}, err
	}
	s.started = false
	return res, nil
}

// runPhases is the serial drive path — exactly the code every run used
// before the parallel mode existed (Parallelism <= 1 still lands here).
func (s *System) runPhases(ctx context.Context) (Results, error) {
	if s.phase == snapshot.PhaseWarmup {
		if err := s.drive(ctx); err != nil {
			return Results{}, err
		}
		s.beginROI()
	}
	if err := s.drive(ctx); err != nil {
		return Results{}, err
	}
	s.reportProgress()
	return s.collect(), nil
}

// beginROI transitions warmup → ROI: reset stats, snapshot clocks.
func (s *System) beginROI() {
	s.phase = snapshot.PhaseROI
	s.llc.ResetStats()
	s.dram.ResetCounters()
	for _, c := range s.cores {
		c.l1d.ResetStats()
		c.l2.ResetStats()
		c.roiStartClock = c.clock
		c.roiStartRetired = c.retired
		c.target = c.retired + s.roi
		c.done = false
	}
}

func (s *System) collect() Results {
	res := Results{LLCStats: s.llc.StatsSnapshot()}
	res.DRAMReads, res.DRAMWrites, res.DRAMRowHits, res.DRAMRowMisses = s.dram.Counters()
	for _, c := range s.cores {
		instr := c.retired - c.roiStartRetired
		cycles := c.clock - c.roiStartClock
		ipc := 0.0
		if cycles > 0 {
			ipc = float64(instr) / float64(cycles)
		}
		res.Cores = append(res.Cores, CoreResult{
			Core:         c.id,
			Workload:     c.gen.Name(),
			Instructions: instr,
			Cycles:       cycles,
			IPC:          ipc,
		})
	}
	return res
}

// drive interleaves cores by local clock until every core reaches target.
// It returns ctx.Err() if the context is cancelled mid-phase, and
// snapshot.ErrStopped if the auto-snapshot trigger fired (after writing
// the deadline snapshot).
func (s *System) drive(ctx context.Context) error {
	var steps uint64
	for {
		// Pick the laggard core still running (first core in index order
		// with the strictly smallest clock) and the runner-up threshold:
		// the clock/index the laggard must stay under to remain selected.
		var next, ru *core
		nextIdx, ruIdx := -1, -1
		for i, c := range s.cores {
			if c.done {
				continue
			}
			switch {
			case next == nil || c.clock < next.clock:
				ru, ruIdx = next, nextIdx
				next, nextIdx = c, i
			case ru == nil || c.clock < ru.clock:
				ru, ruIdx = c, i
			}
		}
		if next == nil {
			return nil
		}
		// Step the laggard until a rescan would pick a different core:
		// other cores' clocks don't change while next runs, so next stays
		// selected while its clock is below the runner-up's (or equal,
		// when next has the lower index — the tie-break the scan applies).
		// With no runner-up left, next runs to completion.
		for ru == nil || next.clock < ru.clock || (next.clock == ru.clock && nextIdx < ruIdx) {
			steps++
			if steps%cancelCheckPeriod == 0 {
				s.reportProgress()
				// The trigger outranks plain cancellation: a deadline stop
				// must persist its snapshot before the context unwinds.
				if s.auto != nil && s.auto.Trigger.Fired() {
					if err := s.saveAuto(); err != nil {
						return err
					}
					return snapshot.ErrStopped
				}
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if s.auto != nil && s.auto.Every > 0 && steps%s.auto.Every == 0 {
				if err := s.saveAuto(); err != nil {
					return err
				}
			}
			if invariant.Enabled {
				if invariant.Every(steps, llcAuditPeriod) {
					if a, ok := s.llc.(auditor); ok {
						invariant.CheckErr(a.Audit())
					}
				}
			}
			s.step(next)
			if next.retired >= next.target {
				next.drain()
				next.done = true
				break
			}
		}
	}
}

// step advances one core by one trace event.
func (s *System) step(c *core) {
	ev := c.gen.Next()
	// Gap instructions cost gap/retireWidth cycles (the narrower of
	// issue/retire bounds steady-state throughput). subIssue is always
	// non-negative, so shift/mask equals div/mod for power-of-two widths.
	width := s.cfg.Core.RetireWidth
	c.subIssue += int(ev.Gap)
	if width&(width-1) == 0 {
		c.clock += uint64(c.subIssue >> uint(bits.TrailingZeros(uint(width))))
		c.subIssue &= width - 1
	} else {
		c.clock += uint64(c.subIssue / width)
		c.subIssue %= width
	}
	c.retired += uint64(ev.Gap) + 1

	lat, longMiss := s.memAccess(c, ev)
	s.prefetchAfter(c, ev.Line)
	if !longMiss {
		// L1 hits are fully pipelined; they cost issue slot only.
		return
	}
	// Long-latency access: runs under the ROB/MSHR window.
	completion := c.clock + lat
	limit := s.mlpCap(int(ev.Gap))
	for len(c.outstanding)-c.outHead >= limit {
		head := c.outstanding[c.outHead]
		c.outHead++
		if head > c.clock {
			c.clock = head
		}
	}
	if c.outHead > 64 && c.outHead*2 >= len(c.outstanding) {
		c.outstanding = append(c.outstanding[:0], c.outstanding[c.outHead:]...)
		c.outHead = 0
	}
	c.outstanding = append(c.outstanding, completion)
}

// mlpCap bounds in-flight long-latency accesses by MSHRs and by how many
// such accesses fit in the ROB given the current gap density.
func (s *System) mlpCap(gap int) int {
	byROB := s.cfg.Core.ROB / (gap + 1)
	if byROB < 1 {
		byROB = 1
	}
	if byROB > s.cfg.Core.MSHRs {
		return s.cfg.Core.MSHRs
	}
	return byROB
}

// drain waits out the outstanding window at the end of a phase.
func (c *core) drain() {
	for _, t := range c.outstanding[c.outHead:] {
		if t > c.clock {
			c.clock = t
		}
	}
	c.outstanding = c.outstanding[:0]
	c.outHead = 0
}

// memAccess walks the hierarchy for one access and returns (latency,
// longMiss). longMiss is false for L1D hits, which the pipeline hides.
func (s *System) memAccess(c *core, ev trace.Event) (uint64, bool) {
	p := &s.cfg.Core
	// Stores hit the L1D as writebacks (RFO + dirty); the fetch below on
	// a miss is a demand read. Dirtiness then propagates down the
	// hierarchy through natural eviction.
	l1Type := cachemodel.Read
	if ev.Write {
		l1Type = cachemodel.Writeback
	}
	r1 := c.l1d.Access(cachemodel.Access{Line: ev.Line, Type: l1Type, SDID: uint8(c.id), Core: uint8(c.id)})
	// L1 victims writeback into L2.
	for _, wb := range r1.Writebacks {
		s.l2WB(c, wb)
	}
	if r1.DataHit {
		return p.L1DLatency, false
	}

	// L2.
	acc := cachemodel.Access{Line: ev.Line, Type: cachemodel.Read, SDID: uint8(c.id), Core: uint8(c.id)}
	r2 := c.l2.Access(acc)
	if r2.DataHit {
		return p.L1DLatency + p.L2Latency, true
	}
	for _, wb := range r2.Writebacks {
		s.llcWB(c, wb)
	}

	// LLC (shared, pluggable design under test).
	llcLat := p.LLCLatency + uint64(s.llc.LookupPenalty())
	r3 := s.llc.Access(acc)
	s.pushWBs(c, r3.Writebacks)
	lat := p.L1DLatency + p.L2Latency + llcLat
	if r3.DataHit {
		return lat, true
	}

	// DRAM fetch. The request reaches the controller after the lookup
	// chain.
	lat += s.dram.Read(c.clock+lat, ev.Line)
	return lat, true
}

// prefetchAfter issues the prefetcher's predictions for a demand access.
// Prefetches run asynchronously (the core never waits) but walk the real
// hierarchy: they fill L1D/L2/LLC-as-applicable, consume DRAM bandwidth,
// and pollute exactly as hardware prefetches do.
func (s *System) prefetchAfter(c *core, line uint64) {
	if c.pf == nil {
		return
	}
	for _, pl := range c.pf.observe(line) {
		acc := cachemodel.Access{Line: pl, Type: cachemodel.Read, SDID: uint8(c.id), Core: uint8(c.id)}
		if r1 := c.l1d.Access(acc); r1.DataHit {
			continue
		} else {
			for _, wb := range r1.Writebacks {
				s.l2WB(c, wb)
			}
		}
		if r2 := c.l2.Access(acc); r2.DataHit {
			continue
		} else {
			for _, wb := range r2.Writebacks {
				s.llcWB(c, wb)
			}
		}
		r3 := s.llc.Access(acc)
		s.pushWBs(c, r3.Writebacks)
		if !r3.DataHit {
			s.dram.Read(c.clock, pl) // bandwidth only; nothing waits
		}
	}
}

// l2WB sends an L1 dirty victim into the L2 (writeback-allocate).
func (s *System) l2WB(c *core, wb cachemodel.WritebackOut) {
	r := c.l2.Access(cachemodel.Access{Line: wb.Line, Type: cachemodel.Writeback, SDID: wb.SDID, Core: uint8(c.id)})
	for _, w := range r.Writebacks {
		s.llcWB(c, w)
	}
}

// llcWB sends an L2 dirty victim into the LLC.
func (s *System) llcWB(c *core, wb cachemodel.WritebackOut) {
	r := s.llc.Access(cachemodel.Access{Line: wb.Line, Type: cachemodel.Writeback, SDID: wb.SDID, Core: uint8(c.id)})
	s.pushWBs(c, r.Writebacks)
}

// pushWBs retires LLC dirty victims to memory.
func (s *System) pushWBs(c *core, wbs []cachemodel.WritebackOut) {
	for _, w := range wbs {
		s.dram.Write(c.clock, w.Line)
	}
}

// LLC exposes the design under test (for post-run inspection).
func (s *System) LLC() cachemodel.LLC { return s.llc }

// DRAM exposes the memory model.
func (s *System) DRAM() *DRAM { return s.dram }
