package cachesim

// The deterministic parallel run mode (RunSpec.Parallelism > 1) splits each
// core's simulation into two halves with very different data dependencies:
//
//   - the *front*: trace generator, L1D, L2, and prefetcher. Which events a
//     core issues and how they behave in its private hierarchy depend only
//     on the access sequence, never on any clock or on other cores — the
//     generators are pure state machines and the private caches decide
//     hits, fills, and victims from access order alone. The front is
//     therefore a timing-independent pure function of its own state and
//     can be run ahead by a per-core worker goroutine.
//
//   - everything else: per-core clocks, the ROB/MSHR outstanding window,
//     the shared LLC, and DRAM. These couple cores to each other (LLC and
//     DRAM state are order-sensitive) and feed latencies back into clocks,
//     so a single merge thread replays them in exactly the serial
//     interleaving order.
//
// Workers stream per-step records — the event gap, how deep the access
// went (L1 hit / L2 hit / LLC demand), and the ordered list of shared-LLC
// operations the step performs — through per-core SPSC ring buffers in
// batches of batchSteps records (see ring.go). The merge consumes records
// in the serial drive loop's laggard order, so every shared access, DRAM
// transaction, clock advance, and snapshot poll happens with
// byte-identical state to the serial run.

import (
	"fmt"

	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/snapshot"
	"mayacache/internal/trace"
)

// Step record kinds: how deep the demand access went.
const (
	stepL1Hit = uint8(iota) // L1D hit; fully pipelined, no window entry
	stepL2Hit               // L2 hit; long-latency, no shared ops from the demand
	stepLLC                 // LLC demand access (the opDemand in the op list)
)

// Shared-operation kinds, in the order the merge must replay them.
const (
	opWB       = uint8(iota) // L2 dirty victim written back into the LLC
	opDemand                 // the demand read reaching the LLC
	opPrefetch               // a prefetch read reaching the LLC
)

// sharedOp is one LLC-touching operation a front step performs.
type sharedOp struct {
	line uint64
	kind uint8
	sdid uint8
}

// front is the timing-independent half of one core. In a parallel run it
// aliases the core's own generator, private caches, and prefetcher (the
// merge never touches those during the run), so when the workers finish
// the System's cores hold the exact end-of-run private state with no
// copy-back. Snapshot replicas use independently cloned fronts instead.
type front struct {
	id  int
	gen trace.Generator
	l1d *baseline.SetAssoc
	l2  *baseline.SetAssoc
	pf  *prefetcher

	retired uint64
	target  uint64
	roi     uint64
	phase   uint8
	done    bool
}

// frontOf snapshots core c's run-progress cursor into a front sharing its
// components.
func (s *System) frontOf(c *core) *front {
	return &front{
		id: c.id, gen: c.gen, l1d: c.l1d, l2: c.l2, pf: c.pf,
		retired: c.retired, target: c.target, roi: s.roi,
		phase: s.phase, done: c.done,
	}
}

// privateStep advances the front by one trace event and appends its
// record to b. The access walk mirrors System.memAccess/prefetchAfter
// exactly, with every LLC-touching call recorded instead of performed:
// the op order here is the order the serial code would call the LLC.
func (f *front) privateStep(b *batch) {
	ev := f.gen.Next()
	f.retired += uint64(ev.Gap) + 1
	opStart := len(b.ops)
	id := uint8(f.id)

	kind := stepL1Hit
	l1Type := cachemodel.Read
	if ev.Write {
		l1Type = cachemodel.Writeback
	}
	r1 := f.l1d.Access(cachemodel.Access{Line: ev.Line, Type: l1Type, SDID: id, Core: id})
	for _, wb := range r1.Writebacks {
		f.l2WB(b, wb)
	}
	if !r1.DataHit {
		acc := cachemodel.Access{Line: ev.Line, Type: cachemodel.Read, SDID: id, Core: id}
		r2 := f.l2.Access(acc)
		if r2.DataHit {
			kind = stepL2Hit
		} else {
			for _, wb := range r2.Writebacks {
				b.ops = append(b.ops, sharedOp{line: wb.Line, kind: opWB, sdid: wb.SDID})
			}
			kind = stepLLC
			b.ops = append(b.ops, sharedOp{line: ev.Line, kind: opDemand, sdid: id})
		}
	}

	if f.pf != nil {
		for _, pl := range f.pf.observe(ev.Line) {
			acc := cachemodel.Access{Line: pl, Type: cachemodel.Read, SDID: id, Core: id}
			if r1 := f.l1d.Access(acc); r1.DataHit {
				continue
			} else {
				for _, wb := range r1.Writebacks {
					f.l2WB(b, wb)
				}
			}
			if r2 := f.l2.Access(acc); r2.DataHit {
				continue
			} else {
				for _, wb := range r2.Writebacks {
					b.ops = append(b.ops, sharedOp{line: wb.Line, kind: opWB, sdid: wb.SDID})
				}
			}
			b.ops = append(b.ops, sharedOp{line: pl, kind: opPrefetch, sdid: id})
		}
	}

	b.gaps[b.n] = ev.Gap
	b.kinds[b.n] = kind
	b.nOps[b.n] = uint16(len(b.ops) - opStart)
	b.n++
}

// l2WB is the front half of System.l2WB: the L1 victim enters the L2 and
// any L2 victims it displaces are recorded for the merge's LLC.
func (f *front) l2WB(b *batch, wb cachemodel.WritebackOut) {
	r := f.l2.Access(cachemodel.Access{Line: wb.Line, Type: cachemodel.Writeback, SDID: wb.SDID, Core: uint8(f.id)})
	for _, w := range r.Writebacks {
		b.ops = append(b.ops, sharedOp{line: w.Line, kind: opWB, sdid: w.SDID})
	}
}

// localBeginROI is the front half of beginROI, applied at the core's own
// warmup→ROI sequence boundary. The worker applies it when its warmup
// budget is spent — before its first ROI-phase access, which is when the
// reset becomes observable — while the serial code applies it at the
// global phase barrier; the two orders are indistinguishable because a
// finished core issues no accesses in between. (Snapshot replicas, whose
// state IS observed in between, defer this to the global barrier; see
// replica.advanceTo.)
func (f *front) localBeginROI() {
	f.phase = snapshot.PhaseROI
	f.l1d.ResetStats()
	f.l2.ResetStats()
	f.target = f.retired + f.roi
}

// workerRun produces f's record stream until the run's instruction budget
// is spent, mirroring the phase structure the merge's drive loop consumes:
// warmup steps while retired < target (a restored not-yet-done core always
// has retired < target), then — matching beginROI's unconditional
// done=false — at least one ROI step even when the ROI budget is zero.
// The deferred ring close runs after the recover handler (LIFO), so the
// error slot is written before the merge can observe the closed stream.
func workerRun(f *front, r *ring, stop <-chan struct{}, errp *error) {
	defer r.close()
	defer func() {
		if rec := recover(); rec != nil {
			*errp = fmt.Errorf("cachesim: core %d worker: %v", f.id, rec)
		}
	}()
	b := r.acquire(stop)
	if b == nil {
		return
	}
	step := func() bool {
		f.privateStep(b)
		if b.n >= batchSteps {
			r.publish()
			b = r.acquire(stop)
			return b != nil
		}
		return true
	}

	if f.phase == snapshot.PhaseWarmup {
		if !f.done {
			for f.retired < f.target {
				if !step() {
					return
				}
			}
		}
		f.localBeginROI()
		for {
			if !step() {
				return
			}
			if f.retired >= f.target {
				break
			}
		}
	} else if !f.done {
		for f.retired < f.target {
			if !step() {
				return
			}
		}
	}
	if b.n > 0 {
		r.publish()
	}
}
