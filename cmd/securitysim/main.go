// Command securitysim runs the paper's security experiments: the
// bucket-and-balls Monte-Carlo model and the analytical Birth-Death model
// (Figures 6 and 7, Tables I and IV, and the Section VI non-decoupled
// strawman).
//
// Usage:
//
//	securitysim -experiment fig7 [-buckets 16384] [-iters 100000000] [-shards 8]
//
// Experiments: fig6, fig7, table1, table4, nondecoupled, all.
//
// Monte-Carlo experiments run shard-parallel: the iteration budget splits
// into -shards independent streams executed on -workers CPUs. The shard
// count is part of the experiment definition (results are a pure function
// of seed, iterations, and shards; worker count never changes a number),
// and -shards 1 reproduces the historical serial runs byte for byte.
//
// Each experiment runs isolated under the resilient harness: a panic or
// error in one experiment of an `-experiment all` run is reported in the
// final failure summary (exit 1) while the others still produce their
// tables. Invalid flags exit 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"mayacache/internal/analytic"
	"mayacache/internal/experiments"
	"mayacache/internal/harness"
	"mayacache/internal/mc"
	"mayacache/internal/pprofutil"
	"mayacache/internal/report"
)

func main() {
	os.Exit(run())
}

// flags carries the parsed command line through validation.
type flags struct {
	exp     string
	buckets int
	iters   uint64
	seed    uint64
	shards  int
	workers int
	csv     bool
}

// validateFlags enforces the usage contract; any error here exits 2.
func validateFlags(f flags) error {
	switch f.exp {
	case "fig6", "fig7", "table1", "table4", "nondecoupled", "all":
	default:
		return fmt.Errorf("unknown experiment %q (valid: fig6, fig7, table1, table4, nondecoupled, all)", f.exp)
	}
	if f.buckets < 1 {
		return fmt.Errorf("-buckets must be >= 1, got %d", f.buckets)
	}
	if f.iters == 0 {
		return fmt.Errorf("-iters must be positive")
	}
	if f.shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", f.shards)
	}
	if uint64(f.shards) > f.iters {
		return fmt.Errorf("-shards %d exceeds -iters %d: a shard cannot run a fractional iteration", f.shards, f.iters)
	}
	if f.workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", f.workers)
	}
	return nil
}

func run() int {
	var (
		f          flags
		cpuprofile string
		memprofile string
		progress   string
	)
	flag.StringVar(&f.exp, "experiment", "all", "fig6|fig7|table1|table4|nondecoupled|all")
	flag.IntVar(&f.buckets, "buckets", 16384, "buckets per skew (16384 = paper scale)")
	flag.Uint64Var(&f.iters, "iters", 20_000_000, "Monte-Carlo iterations per configuration point")
	flag.Uint64Var(&f.seed, "seed", 1, "seed")
	flag.IntVar(&f.shards, "shards", runtime.GOMAXPROCS(0), "independent Monte-Carlo streams (part of the experiment definition; 1 = historical serial run)")
	flag.IntVar(&f.workers, "workers", runtime.GOMAXPROCS(0), "worker pool width (wall clock only, never results)")
	flag.BoolVar(&f.csv, "csv", false, "emit CSV")
	flag.StringVar(&cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&memprofile, "memprofile", "", "write an allocation profile to this file on exit")
	flag.StringVar(&progress, "progress", "auto", "live progress line on stderr: auto|on|off")
	flag.Parse()

	if err := validateFlags(f); err != nil {
		fmt.Fprintf(os.Stderr, "securitysim: %v\n", err)
		return 2
	}
	showProgress := progress == "on" || (progress == "auto" && stderrIsTerminal())

	stopCPU, err := pprofutil.StartCPU(cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "securitysim: %v\n", err)
		return 2
	}
	defer stopCPU()

	out := os.Stdout
	emit := func(t *report.Table) {
		if f.csv {
			t.CSV(out)
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := harness.New(harness.Options{Workers: 1})
	// runExp isolates one experiment: panics and errors become structured
	// failures on the shared runner instead of killing the process.
	runExp := func(name string, fn func() error) {
		_, _, _ = harness.RunCells(ctx, runner, name, []string{"-"}, func(context.Context, int) (struct{}, error) {
			return struct{}{}, fn()
		})
	}
	spec := experiments.SecuritySpec{
		Buckets: f.buckets,
		Iters:   f.iters,
		Seed:    f.seed,
		Shards:  f.shards,
		Workers: f.workers,
	}

	experimentsFor := map[string][]struct {
		name string
		fn   func() error
	}{}
	mcExp := func(name string, total uint64, body func(spec experiments.SecuritySpec) error) func() error {
		return func() error {
			s := spec
			tracker, finish := newProgress(name, total, showProgress)
			s.Tracker = tracker
			defer finish()
			return body(s)
		}
	}
	all := []struct {
		name string
		fn   func() error
	}{
		{"fig6", mcExp("fig6", experiments.Fig6Iters(spec), func(s experiments.SecuritySpec) error {
			return fig6(ctx, emit, s)
		})},
		{"fig7", mcExp("fig7", spec.Iters, func(s experiments.SecuritySpec) error {
			return fig7(ctx, emit, s)
		})},
		{"table1", func() error { return table1(emit) }},
		{"table4", func() error { return table4(emit) }},
		{"nondecoupled", mcExp("nondecoupled", spec.Iters, func(s experiments.SecuritySpec) error {
			return nonDecoupled(ctx, emit, s)
		})},
	}
	for _, e := range all {
		experimentsFor[e.name] = append(experimentsFor[e.name], e)
		experimentsFor["all"] = append(experimentsFor["all"], e)
	}
	for _, e := range experimentsFor[f.exp] {
		runExp(e.name, e.fn)
	}

	if err := pprofutil.WriteHeap(memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "securitysim: %v\n", err)
		return 2
	}
	if runner.Failed() {
		runner.WriteFailureSummary(os.Stderr)
		return 1
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "securitysim: interrupted")
		return 1
	}
	return 0
}

// stderrIsTerminal reports whether stderr is a character device, the
// -progress auto heuristic: pipes and files stay clean for diffing.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// newProgress builds the experiment's iteration tracker and a finish
// function that clears the progress line. Updates are rate-limited so the
// tracker callback (invoked from every worker) stays cheap.
func newProgress(name string, total uint64, enabled bool) (*mc.Tracker, func()) {
	if !enabled {
		return nil, func() {}
	}
	var mu sync.Mutex
	var last time.Time
	tracker := mc.NewTracker(total, func(done, total uint64) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if done < total && now.Sub(last) < 250*time.Millisecond {
			return
		}
		last = now
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d iterations (%.1f%%) ", name, done, total, 100*float64(done)/float64(total))
	})
	return tracker, func() {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(os.Stderr, "\r%*s\r", len(name)+48, "")
	}
}

// fig6 measures iterations per bucket spill as capacity varies from 9 to
// 13; 14 and 15 come from the analytical model (as in the paper, where
// even 10^12 iterations see no spill).
func fig6(ctx context.Context, emit func(*report.Table), spec experiments.SecuritySpec) error {
	t := report.NewTable("Fig 6: iterations per bucket spill vs bucket capacity (Maya model)",
		"capacity (ways/skew)", "iterations/spill", "source")
	points, err := experiments.Fig6(ctx, spec)
	if err != nil {
		return err
	}
	for _, p := range points {
		if p.Result.Spills > 0 {
			t.AddRow(p.Capacity, fmt.Sprintf("%.3g", float64(p.Result.Iterations)/float64(p.Result.Spills)), "simulated")
		} else {
			t.AddRow(p.Capacity, fmt.Sprintf("> %d (no spill observed)", spec.Iters), "simulated")
		}
	}
	d, err := analytic.Solve(9)
	if err != nil {
		return err
	}
	for _, capacity := range []int{14, 15} {
		// Two installs per iteration in the Maya model.
		t.AddRow(capacity, fmt.Sprintf("%.3g", d.InstallsPerSAE(capacity)/2), "analytical")
	}
	emit(t)
	return nil
}

// fig7 compares the simulated occupancy distribution with the analytical
// model.
func fig7(ctx context.Context, emit func(*report.Table), spec experiments.SecuritySpec) error {
	res, err := experiments.Fig7(ctx, spec)
	if err != nil {
		return err
	}
	sim := res.Histogram()
	d, err := analytic.Solve(9)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 7: Pr(bucket has N balls) — simulated vs analytical",
		"N", "simulated", "analytical")
	for n := 0; n <= 16; n++ {
		simv := "-"
		if n < len(sim) && sim[n] > 0 {
			simv = fmt.Sprintf("%.4g", sim[n])
		}
		t.AddRow(n, simv, fmt.Sprintf("%.4g", d.Pr(n)))
	}
	emit(t)
	return nil
}

// table1 computes cache line installs per SAE across reuse/invalid way
// configurations (analytical model; the paper's own table extrapolates the
// same way for the large values).
func table1(emit func(*report.Table)) error {
	t := report.NewTable("Table I: installs per SAE vs reuse ways (analytical model)",
		"reuse ways/skew", "5 invalid ways/skew", "6 invalid ways/skew")
	for _, reuse := range []int{1, 3, 5, 7} {
		row := []any{reuse}
		for _, inv := range []int{5, 6} {
			p := analytic.DesignPoint{BaseWays: 6, ReuseWays: reuse, InvalidWays: inv}
			v, err := p.InstallsPerSAE()
			if err != nil {
				return err
			}
			row = append(row, analytic.FormatInstalls(v))
		}
		t.AddRow(row...)
	}
	emit(t)
	return nil
}

// table4 sweeps the tag-store base associativity.
func table4(emit func(*report.Table)) error {
	t := report.NewTable("Table IV: installs per SAE vs tag-store associativity (analytical model)",
		"invalid ways/skew", "8-ways (3+1)", "18-ways (6+3)", "36-ways (12+6)")
	points := []analytic.DesignPoint{
		{BaseWays: 3, ReuseWays: 1},
		{BaseWays: 6, ReuseWays: 3},
		{BaseWays: 12, ReuseWays: 6},
	}
	for _, inv := range []int{4, 5, 6} {
		row := []any{inv}
		for _, base := range points {
			p := base
			p.InvalidWays = inv
			v, err := p.InstallsPerSAE()
			if err != nil {
				return err
			}
			row = append(row, analytic.FormatInstalls(v))
		}
		t.AddRow(row...)
	}
	emit(t)
	return nil
}

// nonDecoupled evaluates the Section VI strawman: a conventional tag
// geometry kept at 75% occupancy with load-aware fills and global random
// eviction.
func nonDecoupled(ctx context.Context, emit func(*report.Table), spec experiments.SecuritySpec) error {
	t := report.NewTable("Section VI: non-decoupled 75%-threshold design",
		"model", "installs per SAE")
	res, err := experiments.NonDecoupled(ctx, spec)
	if err != nil {
		return err
	}
	if res.Spilled {
		t.AddRow("simulated (first spill)", fmt.Sprintf("%d", res.FirstSpillIter))
	} else {
		t.AddRow("simulated (first spill)", fmt.Sprintf("> %d", spec.Iters))
	}
	d, err := analytic.Solve(12)
	if err != nil {
		return err
	}
	t.AddRow("analytical", analytic.FormatInstalls(d.InstallsPerSAE(16)))
	emit(t)
	return nil
}
