// Command securitysim runs the paper's security experiments: the
// bucket-and-balls Monte-Carlo model and the analytical Birth-Death model
// (Figures 6 and 7, Tables I and IV, and the Section VI non-decoupled
// strawman).
//
// Usage:
//
//	securitysim -experiment fig7 [-buckets 16384] [-iters 100000000]
//
// Experiments: fig6, fig7, table1, table4, nondecoupled, all.
//
// Each experiment runs isolated under the resilient harness: a panic or
// error in one experiment of an `-experiment all` run is reported in the
// final failure summary (exit 1) while the others still produce their
// tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mayacache/internal/analytic"
	"mayacache/internal/buckets"
	"mayacache/internal/harness"
	"mayacache/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp   = flag.String("experiment", "all", "fig6|fig7|table1|table4|nondecoupled|all")
		nb    = flag.Int("buckets", 16384, "buckets per skew (16384 = paper scale)")
		iters = flag.Uint64("iters", 20_000_000, "Monte-Carlo iterations")
		seed  = flag.Uint64("seed", 1, "seed")
		csv   = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	out := os.Stdout
	emit := func(t *report.Table) {
		if *csv {
			t.CSV(out)
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := harness.New(harness.Options{Workers: 1})
	// runExp isolates one experiment: panics and errors become structured
	// failures on the shared runner instead of killing the process.
	runExp := func(name string, fn func() error) {
		_, _, _ = harness.RunCells(ctx, runner, name, []string{"-"}, func(context.Context, int) (struct{}, error) {
			return struct{}{}, fn()
		})
	}

	switch *exp {
	case "fig6":
		runExp("fig6", func() error { return fig6(emit, *nb, *iters, *seed) })
	case "fig7":
		runExp("fig7", func() error { return fig7(emit, *nb, *iters, *seed) })
	case "table1":
		runExp("table1", func() error { return table1(emit) })
	case "table4":
		runExp("table4", func() error { return table4(emit) })
	case "nondecoupled":
		runExp("nondecoupled", func() error { return nonDecoupled(emit, *nb, *iters, *seed) })
	case "all":
		runExp("fig6", func() error { return fig6(emit, *nb, *iters, *seed) })
		runExp("fig7", func() error { return fig7(emit, *nb, *iters, *seed) })
		runExp("table1", func() error { return table1(emit) })
		runExp("table4", func() error { return table4(emit) })
		runExp("nondecoupled", func() error { return nonDecoupled(emit, *nb, *iters, *seed) })
	default:
		fmt.Fprintf(os.Stderr, "securitysim: unknown experiment %q (valid: fig6, fig7, table1, table4, nondecoupled, all)\n", *exp)
		return 2
	}

	if runner.Failed() {
		runner.WriteFailureSummary(os.Stderr)
		return 1
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "securitysim: interrupted")
		return 1
	}
	return 0
}

// fig6 measures iterations per bucket spill as capacity varies from 9 to
// 13; 14 and 15 come from the analytical model (as in the paper, where
// even 10^12 iterations see no spill).
func fig6(emit func(*report.Table), nb int, iters, seed uint64) error {
	t := report.NewTable("Fig 6: iterations per bucket spill vs bucket capacity (Maya model)",
		"capacity (ways/skew)", "iterations/spill", "source")
	for _, capacity := range []int{9, 10, 11, 12, 13} {
		cfg := buckets.MayaDefault(nb, seed)
		cfg.Capacity = capacity
		m := buckets.New(cfg)
		m.Run(iters)
		if m.Spills() > 0 {
			t.AddRow(capacity, fmt.Sprintf("%.3g", float64(m.Iterations())/float64(m.Spills())), "simulated")
		} else {
			t.AddRow(capacity, fmt.Sprintf("> %d (no spill observed)", iters), "simulated")
		}
	}
	d, err := analytic.Solve(9)
	if err != nil {
		return err
	}
	for _, capacity := range []int{14, 15} {
		// Two installs per iteration in the Maya model.
		t.AddRow(capacity, fmt.Sprintf("%.3g", d.InstallsPerSAE(capacity)/2), "analytical")
	}
	emit(t)
	return nil
}

// fig7 compares the simulated occupancy distribution with the analytical
// model.
func fig7(emit func(*report.Table), nb int, iters, seed uint64) error {
	m := buckets.New(buckets.MayaDefault(nb, seed))
	const samples = 200
	chunk := iters / samples
	if chunk == 0 {
		chunk = 1
	}
	for i := 0; i < samples; i++ {
		m.Run(chunk)
		m.SampleHistogram()
	}
	sim := m.Histogram()
	d, err := analytic.Solve(9)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig 7: Pr(bucket has N balls) — simulated vs analytical",
		"N", "simulated", "analytical")
	for n := 0; n <= 16; n++ {
		simv := "-"
		if n < len(sim) && sim[n] > 0 {
			simv = fmt.Sprintf("%.4g", sim[n])
		}
		t.AddRow(n, simv, fmt.Sprintf("%.4g", d.Pr(n)))
	}
	emit(t)
	return nil
}

// table1 computes cache line installs per SAE across reuse/invalid way
// configurations (analytical model; the paper's own table extrapolates the
// same way for the large values).
func table1(emit func(*report.Table)) error {
	t := report.NewTable("Table I: installs per SAE vs reuse ways (analytical model)",
		"reuse ways/skew", "5 invalid ways/skew", "6 invalid ways/skew")
	for _, reuse := range []int{1, 3, 5, 7} {
		row := []any{reuse}
		for _, inv := range []int{5, 6} {
			p := analytic.DesignPoint{BaseWays: 6, ReuseWays: reuse, InvalidWays: inv}
			v, err := p.InstallsPerSAE()
			if err != nil {
				return err
			}
			row = append(row, analytic.FormatInstalls(v))
		}
		t.AddRow(row...)
	}
	emit(t)
	return nil
}

// table4 sweeps the tag-store base associativity.
func table4(emit func(*report.Table)) error {
	t := report.NewTable("Table IV: installs per SAE vs tag-store associativity (analytical model)",
		"invalid ways/skew", "8-ways (3+1)", "18-ways (6+3)", "36-ways (12+6)")
	points := []analytic.DesignPoint{
		{BaseWays: 3, ReuseWays: 1},
		{BaseWays: 6, ReuseWays: 3},
		{BaseWays: 12, ReuseWays: 6},
	}
	for _, inv := range []int{4, 5, 6} {
		row := []any{inv}
		for _, base := range points {
			p := base
			p.InvalidWays = inv
			v, err := p.InstallsPerSAE()
			if err != nil {
				return err
			}
			row = append(row, analytic.FormatInstalls(v))
		}
		t.AddRow(row...)
	}
	emit(t)
	return nil
}

// nonDecoupled evaluates the Section VI strawman: a conventional tag
// geometry kept at 75% occupancy with load-aware fills and global random
// eviction.
func nonDecoupled(emit func(*report.Table), nb int, iters, seed uint64) error {
	t := report.NewTable("Section VI: non-decoupled 75%-threshold design",
		"model", "installs per SAE")
	m := buckets.New(buckets.ThresholdDefault(nb, seed))
	budget := iters
	n, spilled := m.RunUntilSpill(budget)
	if spilled {
		t.AddRow("simulated (first spill)", fmt.Sprintf("%d", n))
	} else {
		t.AddRow("simulated (first spill)", fmt.Sprintf("> %d", budget))
	}
	d, err := analytic.Solve(12)
	if err != nil {
		return err
	}
	t.AddRow("analytical", analytic.FormatInstalls(d.InstallsPerSAE(16)))
	emit(t)
	return nil
}
