// Command securitysim runs the paper's security experiments: the
// bucket-and-balls Monte-Carlo model and the analytical Birth-Death model
// (Figures 6 and 7, Tables I and IV, and the Section VI non-decoupled
// strawman).
//
// Usage:
//
//	securitysim -experiment fig7 [-buckets 16384] [-iters 100000000]
//
// Experiments: fig6, fig7, table1, table4, nondecoupled, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"mayacache/internal/analytic"
	"mayacache/internal/buckets"
	"mayacache/internal/report"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "fig6|fig7|table1|table4|nondecoupled|all")
		nb      = flag.Int("buckets", 16384, "buckets per skew (16384 = paper scale)")
		iters   = flag.Uint64("iters", 20_000_000, "Monte-Carlo iterations")
		seed    = flag.Uint64("seed", 1, "seed")
		csv     = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	out := os.Stdout
	emit := func(t *report.Table) {
		if *csv {
			t.CSV(out)
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}

	switch *exp {
	case "fig6":
		fig6(emit, *nb, *iters, *seed)
	case "fig7":
		fig7(emit, *nb, *iters, *seed)
	case "table1":
		table1(emit)
	case "table4":
		table4(emit)
	case "nondecoupled":
		nonDecoupled(emit, *nb, *iters, *seed)
	case "all":
		fig6(emit, *nb, *iters, *seed)
		fig7(emit, *nb, *iters, *seed)
		table1(emit)
		table4(emit)
		nonDecoupled(emit, *nb, *iters, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// fig6 measures iterations per bucket spill as capacity varies from 9 to
// 13; 14 and 15 come from the analytical model (as in the paper, where
// even 10^12 iterations see no spill).
func fig6(emit func(*report.Table), nb int, iters, seed uint64) {
	t := report.NewTable("Fig 6: iterations per bucket spill vs bucket capacity (Maya model)",
		"capacity (ways/skew)", "iterations/spill", "source")
	for _, capacity := range []int{9, 10, 11, 12, 13} {
		cfg := buckets.MayaDefault(nb, seed)
		cfg.Capacity = capacity
		m := buckets.New(cfg)
		m.Run(iters)
		if m.Spills() > 0 {
			t.AddRow(capacity, fmt.Sprintf("%.3g", float64(m.Iterations())/float64(m.Spills())), "simulated")
		} else {
			t.AddRow(capacity, fmt.Sprintf("> %d (no spill observed)", iters), "simulated")
		}
	}
	d, err := analytic.Solve(9)
	if err != nil {
		panic(err)
	}
	for _, capacity := range []int{14, 15} {
		// Two installs per iteration in the Maya model.
		t.AddRow(capacity, fmt.Sprintf("%.3g", d.InstallsPerSAE(capacity)/2), "analytical")
	}
	emit(t)
}

// fig7 compares the simulated occupancy distribution with the analytical
// model.
func fig7(emit func(*report.Table), nb int, iters, seed uint64) {
	m := buckets.New(buckets.MayaDefault(nb, seed))
	const samples = 200
	chunk := iters / samples
	if chunk == 0 {
		chunk = 1
	}
	for i := 0; i < samples; i++ {
		m.Run(chunk)
		m.SampleHistogram()
	}
	sim := m.Histogram()
	d, err := analytic.Solve(9)
	if err != nil {
		panic(err)
	}
	t := report.NewTable("Fig 7: Pr(bucket has N balls) — simulated vs analytical",
		"N", "simulated", "analytical")
	for n := 0; n <= 16; n++ {
		simv := "-"
		if n < len(sim) && sim[n] > 0 {
			simv = fmt.Sprintf("%.4g", sim[n])
		}
		t.AddRow(n, simv, fmt.Sprintf("%.4g", d.Pr(n)))
	}
	emit(t)
}

// table1 computes cache line installs per SAE across reuse/invalid way
// configurations (analytical model; the paper's own table extrapolates the
// same way for the large values).
func table1(emit func(*report.Table)) {
	t := report.NewTable("Table I: installs per SAE vs reuse ways (analytical model)",
		"reuse ways/skew", "5 invalid ways/skew", "6 invalid ways/skew")
	for _, reuse := range []int{1, 3, 5, 7} {
		row := []any{reuse}
		for _, inv := range []int{5, 6} {
			p := analytic.DesignPoint{BaseWays: 6, ReuseWays: reuse, InvalidWays: inv}
			v, err := p.InstallsPerSAE()
			if err != nil {
				panic(err)
			}
			row = append(row, analytic.FormatInstalls(v))
		}
		t.AddRow(row...)
	}
	emit(t)
}

// table4 sweeps the tag-store base associativity.
func table4(emit func(*report.Table)) {
	t := report.NewTable("Table IV: installs per SAE vs tag-store associativity (analytical model)",
		"invalid ways/skew", "8-ways (3+1)", "18-ways (6+3)", "36-ways (12+6)")
	points := []analytic.DesignPoint{
		{BaseWays: 3, ReuseWays: 1},
		{BaseWays: 6, ReuseWays: 3},
		{BaseWays: 12, ReuseWays: 6},
	}
	for _, inv := range []int{4, 5, 6} {
		row := []any{inv}
		for _, base := range points {
			p := base
			p.InvalidWays = inv
			v, err := p.InstallsPerSAE()
			if err != nil {
				panic(err)
			}
			row = append(row, analytic.FormatInstalls(v))
		}
		t.AddRow(row...)
	}
	emit(t)
}

// nonDecoupled evaluates the Section VI strawman: a conventional tag
// geometry kept at 75% occupancy with load-aware fills and global random
// eviction.
func nonDecoupled(emit func(*report.Table), nb int, iters, seed uint64) {
	t := report.NewTable("Section VI: non-decoupled 75%-threshold design",
		"model", "installs per SAE")
	m := buckets.New(buckets.ThresholdDefault(nb, seed))
	budget := iters
	n, spilled := m.RunUntilSpill(budget)
	if spilled {
		t.AddRow("simulated (first spill)", fmt.Sprintf("%d", n))
	} else {
		t.AddRow("simulated (first spill)", fmt.Sprintf("> %d", budget))
	}
	d, err := analytic.Solve(12)
	if err != nil {
		panic(err)
	}
	t.AddRow("analytical", analytic.FormatInstalls(d.InstallsPerSAE(16)))
	emit(t)
}
