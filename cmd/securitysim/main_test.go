package main

import "testing"

// TestValidateFlags pins the usage contract that maps to exit 2.
func TestValidateFlags(t *testing.T) {
	valid := flags{exp: "fig6", buckets: 256, iters: 1000, shards: 4, workers: 2}
	cases := []struct {
		name   string
		mutate func(f *flags)
		ok     bool
	}{
		{"valid", func(f *flags) {}, true},
		{"all experiments", func(f *flags) { f.exp = "all" }, true},
		{"one shard", func(f *flags) { f.shards = 1 }, true},
		{"shards equal iters", func(f *flags) { f.shards = 1000 }, true},
		{"unknown experiment", func(f *flags) { f.exp = "fig99" }, false},
		{"zero iters", func(f *flags) { f.iters = 0 }, false},
		{"zero shards", func(f *flags) { f.shards = 0 }, false},
		{"negative shards", func(f *flags) { f.shards = -3 }, false},
		{"shards exceed iters", func(f *flags) { f.shards = 1001 }, false},
		{"zero workers", func(f *flags) { f.workers = 0 }, false},
		{"negative workers", func(f *flags) { f.workers = -1 }, false},
		{"zero buckets", func(f *flags) { f.buckets = 0 }, false},
	}
	for _, tc := range cases {
		f := valid
		tc.mutate(&f)
		err := validateFlags(f)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid flags accepted", tc.name)
		}
	}
}
