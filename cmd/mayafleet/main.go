// Command mayafleet runs design/benchmark/seed sweep grids on the
// fault-tolerant distributed fabric (internal/dist): a coordinator hands
// grid cells to workers under time-bounded leases with heartbeats, dead
// or partitioned workers lose their leases and their cells migrate —
// resuming from the worker's last uploaded MAYASNAP state blob — and
// the final report is byte-identical to a serial run of the same grid.
//
// Usage:
//
//	mayafleet serial     [grid flags] [-workers N] [-retries N]
//	                     [-checkpoint FILE] [-fault SPEC]
//	mayafleet coordinate [grid flags] (-inproc N | -listen ADDR)
//	                     [-lease 10s] [-heartbeat 2s] [-retries N]
//	                     [-snapshot-dir DIR] [-snapshot-every N]
//	                     [-checkpoint FILE] [-fault SPEC]... [-addr-file FILE]
//	mayafleet work       -addr HOST:PORT [-name LABEL] [-snapshot-dir DIR]
//	                     [-fault SPEC]... [-grace 30s] [-leases N]
//
// Grid flags: -designs Baseline,Maya -benches mcf,lbm -cores 8
// -warmup N -roi N -seed S -seeds K (K seeds derived from S by the Monte
// Carlo engine's shard derivation).
//
// serial runs the grid through the plain in-process harness — the
// reference execution the fabric byte-matches. coordinate owns the cell
// table: -inproc N spins up N workers inside the process over pipes (no
// networking); -listen ADDR serves net/rpc over TCP for external
// `mayafleet work` processes and, with -addr-file, writes the bound
// address for scripts. work pulls leases until the coordinator reports
// the run complete; SIGINT/SIGTERM makes its in-flight cell save and
// upload its exact simulator state, stop early, and migrate to a
// surviving worker — a SIGKILL instead costs at most one snapshot
// interval of recomputation.
//
// -fault injects faults for chaos drills (repeatable): distkill:S:N
// (SIGKILL the worker at the N-th durable save of a cell matching
// substring S), distdrop:S:N (blackhole the next N cell-scoped RPCs),
// distdelay:S:D (stall heartbeats by D), plus the harness specs
// panic:S, error:S, transient:S:K applied before matching cells.
//
// Both report paths emit one TSV row per cell on stdout —
// key<TAB>OK<TAB>json or key<TAB>FAILED<TAB>error — sorted by key.
//
// Exit status: 0 when every cell completed; 1 when any cell FAILED,
// the run was interrupted, or a transport link died; 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/rpc"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mayacache/internal/dist"
	"mayacache/internal/experiments"
	"mayacache/internal/faults"
	"mayacache/internal/harness"
	"mayacache/internal/snapshot"
	"mayacache/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintln(os.Stderr, "usage: mayafleet <serial|coordinate|work> [flags]")
	fmt.Fprintln(os.Stderr, "run 'mayafleet <subcommand> -h' for subcommand flags")
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "serial":
		return runSerial(args[1:])
	case "coordinate":
		return runCoordinate(args[1:])
	case "work":
		return runWork(args[1:])
	case "-h", "-help", "--help":
		return usage()
	default:
		fmt.Fprintf(os.Stderr, "mayafleet: unknown subcommand %q\n", args[0])
		return usage()
	}
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "mayafleet: "+format+"\n", args...)
	return 2
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mayafleet: "+format+"\n", args...)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// gridFlags registers and resolves the sweep-grid flag group shared by
// serial and coordinate.
type gridFlags struct {
	designs string
	benches string
	cores   int
	warmup  uint64
	roi     uint64
	seed    uint64
	seeds   int
}

func addGridFlags(fs *flag.FlagSet) *gridFlags {
	g := &gridFlags{}
	fs.StringVar(&g.designs, "designs", "Baseline,Maya", "comma-separated cache designs to sweep")
	fs.StringVar(&g.benches, "benches", "mcf,lbm", "comma-separated benchmarks to sweep")
	fs.IntVar(&g.cores, "cores", 8, "cores per simulated system")
	fs.Uint64Var(&g.warmup, "warmup", 2_000_000, "warmup instructions per core")
	fs.Uint64Var(&g.roi, "roi", 1_000_000, "measured instructions per core")
	fs.Uint64Var(&g.seed, "seed", 1, "base sweep seed")
	fs.IntVar(&g.seeds, "seeds", 1, "number of seeds derived from -seed (mc shard derivation)")
	return g
}

// grid validates the flag group and expands it into a dist.Grid; errors
// are usage errors (no simulation has run).
func (g *gridFlags) grid() (dist.Grid, error) {
	if g.seeds <= 0 {
		return dist.Grid{}, fmt.Errorf("-seeds must be positive (got %d)", g.seeds)
	}
	var designs []experiments.Design
	for _, d := range splitList(g.designs) {
		if _, err := experiments.NewLLCChecked(experiments.Design(d),
			experiments.LLCOptions{Cores: g.cores, Seed: 1, FastHash: true}); err != nil {
			return dist.Grid{}, fmt.Errorf("design %q: %w", d, err)
		}
		designs = append(designs, experiments.Design(d))
	}
	var benches []string
	for _, b := range splitList(g.benches) {
		if _, err := trace.Lookup(b); err != nil {
			return dist.Grid{}, err
		}
		benches = append(benches, b)
	}
	grid := dist.Grid{
		Designs: designs,
		Benches: benches,
		Seeds:   dist.SeedList(g.seed, g.seeds),
		Cores:   g.cores,
		Warmup:  g.warmup,
		ROI:     g.roi,
	}
	return grid, grid.Validate()
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseFaults splits fault specs into distributed injectors and a
// harness pre-run hook chain.
func parseFaults(specs []string) ([]*faults.DistFault, func(string) error, error) {
	var dists []*faults.DistFault
	var hooks []func(string) error
	for _, spec := range specs {
		df, err := faults.ParseDist(spec)
		if err != nil {
			return nil, nil, err
		}
		if df != nil {
			dists = append(dists, df)
			continue
		}
		h, err := faults.ParseHook(spec)
		if err != nil {
			return nil, nil, err
		}
		if h != nil {
			hooks = append(hooks, h)
		}
	}
	var hook func(string) error
	if len(hooks) > 0 {
		hook = func(key string) error {
			for _, h := range hooks {
				if err := h(key); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return dists, hook, nil
}

// emitReport writes the TSV and folds the outcome into an exit code.
func emitReport(rep dist.Report, interrupted bool) int {
	if err := rep.WriteTSV(os.Stdout); err != nil {
		logf("writing report: %v", err)
		return 1
	}
	if interrupted {
		logf("interrupted; partial report above")
		return 1
	}
	if rep.Failed() {
		logf("some cells FAILED (rows above)")
		return 1
	}
	return 0
}

func runSerial(args []string) int {
	fs := flag.NewFlagSet("mayafleet serial", flag.ContinueOnError)
	g := addGridFlags(fs)
	var (
		workers    = fs.Int("workers", 0, "worker-pool width (0 = all CPUs but one)")
		retries    = fs.Int("retries", 0, "retries for cells failing with transient errors")
		checkpoint = fs.String("checkpoint", "", "JSONL checkpoint file: completed cells are appended and restored on rerun")
		faultSpecs multiFlag
	)
	fs.Var(&faultSpecs, "fault", "inject a fault into matching cells (repeatable): panic:<substr> | error:<substr> | transient:<substr>:<k>")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	grid, err := g.grid()
	if err != nil {
		return fail("%v", err)
	}
	if *workers < 0 || *retries < 0 {
		return fail("-workers and -retries must be >= 0")
	}
	dists, hook, err := parseFaults(faultSpecs)
	if err != nil {
		return fail("%v", err)
	}
	if len(dists) > 0 {
		return fail("distributed fault specs need a worker fleet; use them with coordinate -inproc or work")
	}
	var cp *harness.Checkpoint
	if *checkpoint != "" {
		if cp, err = harness.OpenCheckpoint(*checkpoint); err != nil {
			return fail("%v", err)
		}
		defer cp.Close()
	}
	ctx, cancel := harness.NotifyShutdown(context.Background(), nil, 0,
		func(msg string) { logf("%s", msg) })
	defer cancel()
	runner := harness.New(harness.Options{
		Workers:    *workers,
		Retries:    *retries,
		Seed:       g.seed,
		Checkpoint: cp,
		PreRun:     hook,
	})
	rep, err := dist.RunSerial(ctx, runner, grid)
	if err != nil && ctx.Err() == nil {
		return fail("%v", err)
	}
	return emitReport(rep, ctx.Err() != nil)
}

func runCoordinate(args []string) int {
	fs := flag.NewFlagSet("mayafleet coordinate", flag.ContinueOnError)
	g := addGridFlags(fs)
	var (
		inproc     = fs.Int("inproc", 0, "run N in-process workers over pipes (no networking)")
		listen     = fs.String("listen", "", "serve net/rpc on this TCP address for external workers")
		addrFile   = fs.String("addr-file", "", "write the bound listen address to this file (for scripts using -listen with port 0)")
		lease      = fs.Duration("lease", 10*time.Second, "lease duration: how long a cell survives without a heartbeat")
		heartbeat  = fs.Duration("heartbeat", 0, "worker heartbeat cadence (0 = lease/5); also bounds cancellation latency")
		retries    = fs.Int("retries", 2, "per-cell retry budget for transient failures and lost leases")
		snapDir    = fs.String("snapshot-dir", "", "root directory for in-proc workers' durable cell state (default: a temp dir)")
		snapEvery  = fs.Uint64("snapshot-every", 0, "periodic cell-snapshot cadence in simulator steps (0 saves only on signal)")
		checkpoint = fs.String("checkpoint", "", "JSONL checkpoint file: completed cells are appended and restored on rerun")
		faultSpecs multiFlag
	)
	fs.Var(&faultSpecs, "fault", "inject a fault (repeatable): distkill:<substr>:<n> | distdrop:<substr>:<n> | distdelay:<substr>:<dur> | panic:<substr> | error:<substr> | transient:<substr>:<k>")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	grid, err := g.grid()
	if err != nil {
		return fail("%v", err)
	}
	if (*inproc > 0) == (*listen != "") {
		return fail("pick exactly one of -inproc N or -listen ADDR")
	}
	if *inproc < 0 || *retries < 0 {
		return fail("-inproc and -retries must be >= 0")
	}
	dists, hook, err := parseFaults(faultSpecs)
	if err != nil {
		return fail("%v", err)
	}
	if *listen != "" && (len(dists) > 0 || hook != nil) {
		return fail("with -listen, pass -fault to the worker processes instead")
	}
	var cp *harness.Checkpoint
	if *checkpoint != "" {
		if cp, err = harness.OpenCheckpoint(*checkpoint); err != nil {
			return fail("%v", err)
		}
		defer cp.Close()
	}
	coord, err := dist.NewCoordinator(dist.CoordOptions{
		Grid:          grid,
		Lease:         *lease,
		Heartbeat:     *heartbeat,
		Retries:       *retries,
		Seed:          g.seed,
		SnapshotEvery: *snapEvery,
		Checkpoint:    cp,
		Logf:          logf,
	})
	if err != nil {
		return fail("%v", err)
	}
	ctx, cancel := harness.NotifyShutdown(context.Background(), nil, 0,
		func(msg string) { logf("%s", msg) })
	defer cancel()

	if *inproc > 0 {
		root := *snapDir
		if root == "" {
			if root, err = os.MkdirTemp("", "mayafleet-snaps-"); err != nil {
				return fail("%v", err)
			}
			defer os.RemoveAll(root)
		}
		workers := make([]dist.InprocWorker, *inproc)
		for i := range workers {
			workers[i] = dist.InprocWorker{Opts: dist.WorkerOptions{
				Name:    fmt.Sprintf("inproc%d", i),
				SnapDir: filepath.Join(root, fmt.Sprintf("w%d", i)),
				// Fault instances are shared fleet-wide: a distkill fires
				// on whichever worker reaches the trigger first, once.
				Faults: dists,
				Hook:   hook,
				Logf:   logf,
			}}
		}
		rep, ferr := dist.RunFabric(ctx, coord, workers)
		if ferr != nil && ctx.Err() == nil {
			return fail("%v", ferr)
		}
		return emitReport(rep, ctx.Err() != nil)
	}
	return serveTCP(ctx, coord, *listen, *addrFile)
}

// serveTCP runs the coordinator's RPC service on a TCP listener until
// every cell resolves or ctx ends, then reports.
func serveTCP(ctx context.Context, coord *dist.Coordinator, addr, addrFile string) int {
	srv, err := coord.NewServer()
	if err != nil {
		return fail("%v", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fail("%v", err)
	}
	defer ln.Close()
	logf("coordinating on %s", ln.Addr())
	if addrFile != "" {
		// Atomic write: a script polling the file must never observe a
		// partially written address.
		if err := harness.WriteFileAtomic(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return fail("writing -addr-file: %v", err)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		coord.Serve(ctx)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, aerr := ln.Accept()
			if aerr != nil {
				return // listener closed at shutdown
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				srv.ServeConn(conn)
			}()
		}
	}()

	<-coord.Done()
	// Linger two heartbeats so idle workers observe the dismissal on
	// their next lease poll and exit cleanly, then shut the transport
	// down: dead-but-connected workers would otherwise hold ServeConn
	// goroutines open indefinitely.
	time.Sleep(2 * coord.Heartbeat())
	_ = ln.Close()
	mu.Lock()
	for _, c := range conns {
		_ = c.Close()
	}
	mu.Unlock()
	wg.Wait()
	return emitReport(coord.Report(), ctx.Err() != nil)
}

func runWork(args []string) int {
	fs := flag.NewFlagSet("mayafleet work", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "", "coordinator address (required)")
		name       = fs.String("name", "", "optional worker label included in the coordinator's logs")
		snapDir    = fs.String("snapshot-dir", "", "directory for durable mid-cell state (default: a temp dir)")
		grace      = fs.Duration("grace", 30*time.Second, "how long the first signal waits for the in-flight cell to snapshot before cancelling")
		leases     = fs.Int("leases", 1, "concurrent cell leases this worker holds and executes")
		faultSpecs multiFlag
	)
	fs.Var(&faultSpecs, "fault", "inject a fault (repeatable): distkill:<substr>:<n> | distdrop:<substr>:<n> | distdelay:<substr>:<dur> | panic:<substr> | error:<substr> | transient:<substr>:<k>")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" {
		return fail("-addr is required")
	}
	if *grace < 0 {
		return fail("-grace must be >= 0 (got %v)", *grace)
	}
	if *leases < 1 {
		return fail("-leases must be >= 1 (got %d)", *leases)
	}
	dists, hook, err := parseFaults(faultSpecs)
	if err != nil {
		return fail("%v", err)
	}
	dir := *snapDir
	if dir == "" {
		if dir, err = os.MkdirTemp("", "mayafleet-worker-"); err != nil {
			return fail("%v", err)
		}
		defer os.RemoveAll(dir)
	}

	trig := new(snapshot.Trigger)
	ctx, cancel := harness.NotifyShutdown(context.Background(), trig, *grace,
		func(msg string) { logf("%s", msg) })
	defer cancel()

	client, err := rpc.Dial("tcp", *addr)
	if err != nil {
		return fail("dialing coordinator: %v", err)
	}
	defer client.Close()
	w, err := dist.NewWorker(ctx, client, dist.WorkerOptions{
		Name:    *name,
		SnapDir: dir,
		Faults:  dists,
		Hook:    hook,
		Trigger: trig,
		Leases:  *leases,
		Logf:    logf,
	})
	if err != nil {
		return fail("%v", err)
	}
	logf("registered as %s with %s", w.ID(), *addr)
	if err := w.Run(ctx); err != nil {
		logf("%v", err)
		return 1
	}
	if trig.Fired() || ctx.Err() != nil {
		logf("stopped on signal; in-flight state was uploaded and will migrate")
		return 1
	}
	logf("%s: run complete", w.ID())
	return 0
}
