// Command mayasim runs the paper's performance experiments (Figures 1, 4,
// 9, 10; Tables VII and XI; the Section V-B sensitivity studies) on the
// synthetic-trace multi-core simulator.
//
// Usage:
//
//	mayasim -experiment fig9 [-warmup 2000000] [-roi 1000000] [-seed 1]
//	        [-csv] [-checkpoint sweep.ckpt] [-timeout 10m] [-retries 2]
//	        [-workers N] [-serial]
//	        [-snapshot-dir DIR] [-snapshot-every N] [-grace 30s]
//
// Experiments: fig1, fig4, fig9, fig10, table7, table11, fitting, cores,
// llcsize, all.
//
// Every experiment is a sweep of independent cells executed through the
// resilient harness: a panicking or failing cell is reported in the final
// failure summary (and its table row reads FAILED) while sibling cells
// complete. With -checkpoint, completed cells are appended to the named
// file and an interrupted run (Ctrl-C, kill, timeout) can be rerun with
// the same flags to resume, recomputing only the missing cells; resumed
// runs render byte-identical tables to uninterrupted ones. -timeout
// bounds each cell, not the whole run.
//
// With -snapshot-dir, resume becomes intra-cell: each in-flight cell
// keeps a durable, CRC-checked state file under the directory, refreshed
// every -snapshot-every simulator steps, and the first SIGINT/SIGTERM
// makes running cells save their exact simulator state and stop instead
// of discarding progress; the run is cancelled outright only after the
// -grace window elapses or a second, impatient signal arrives. A rerun
// with the same flags restores each saved cell mid-simulation and
// produces bit-identical results to an uninterrupted run. Snapshots are
// bound to their configuration: a rerun with a different seed, scale, or
// geometry rejects the stale state and exits 2 naming the mismatched
// field.
//
// Exit status: 0 when every cell of every requested experiment completed
// (including runs resumed from snapshots); 1 when interrupted or when
// cells failed; 2 on usage errors — flag misuse, invalid cache
// configurations (errors wrapping cachemodel.ErrBadConfig, meaning no
// simulation ran for those cells), or when the only failures were stale
// snapshots incompatible with the requested configuration.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"mayacache/internal/cachemodel"
	"mayacache/internal/experiments"
	"mayacache/internal/faults"
	"mayacache/internal/harness"
	"mayacache/internal/metrics"
	"mayacache/internal/pprofutil"
	"mayacache/internal/report"
	"mayacache/internal/snapshot"
)

var validExperiments = []string{
	"fig1", "fig4", "fig9", "fig10", "table7", "table11",
	"fitting", "cores", "llcsize", "all",
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("experiment", "all", "experiment to run: fig1|fig4|fig9|fig10|table7|table11|fitting|cores|llcsize|all")
		warmup     = flag.Uint64("warmup", 2_000_000, "warmup instructions per core (must be positive)")
		roi        = flag.Uint64("roi", 1_000_000, "measured instructions per core (must be positive)")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of tables")
		serial     = flag.Bool("serial", false, "disable parallel configuration runs")
		workers    = flag.Int("workers", 0, "worker-pool width (0 = all CPUs but one; implies parallel)")
		timeout    = flag.Duration("timeout", 0, "per-cell timeout (0 disables)")
		retries    = flag.Int("retries", 0, "retries for cells failing with transient errors")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint file: completed cells are appended and restored on rerun")
		fault      = flag.String("fault", "", "inject a fault into matching cells: panic:<substr> | error:<substr> | transient:<substr>:<k> | killsnap:<substr>:<n>")
		snapDir    = flag.String("snapshot-dir", "", "directory for durable mid-cell simulator state; enables intra-cell resume and snapshot-on-signal")
		snapEvery  = flag.Uint64("snapshot-every", 0, "periodic auto-snapshot cadence in simulator steps (requires -snapshot-dir; 0 saves only on signal)")
		grace      = flag.Duration("grace", 30*time.Second, "how long the first signal waits for cell snapshots to save before cancelling (0 cancels immediately)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "mayasim: "+format+"\n", args...)
		return 2
	}
	stopCPU, err := pprofutil.StartCPU(*cpuprofile)
	if err != nil {
		return fail("%v", err)
	}
	defer stopCPU()
	defer func() {
		if err := pprofutil.WriteHeap(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "mayasim: %v\n", err)
		}
	}()
	if *warmup == 0 {
		return fail("-warmup must be positive: a cold-cache ROI measures fill traffic, not steady state")
	}
	if *roi == 0 {
		return fail("-roi must be positive: zero measured instructions produce no statistics")
	}
	if *workers < 0 {
		return fail("-workers must be >= 0 (got %d)", *workers)
	}
	if *retries < 0 {
		return fail("-retries must be >= 0 (got %d)", *retries)
	}
	if *timeout < 0 {
		return fail("-timeout must be >= 0 (got %v)", *timeout)
	}
	if *serial && *workers > 1 {
		return fail("-serial contradicts -workers %d: pick one", *workers)
	}
	if !isValidExperiment(*exp) {
		msg := fmt.Sprintf("unknown experiment %q", *exp)
		if sug := suggestExperiments(*exp); len(sug) > 0 {
			msg += fmt.Sprintf(" (did you mean %v?)", sug)
		}
		return fail("%s; valid experiments: %v", msg, validExperiments)
	}
	if *snapEvery > 0 && *snapDir == "" {
		return fail("-snapshot-every %d without -snapshot-dir: periodic snapshots need somewhere durable to live", *snapEvery)
	}
	if *grace < 0 {
		return fail("-grace must be >= 0 (got %v)", *grace)
	}
	killHook, err := faults.KillOnSave(*fault, nil)
	if err != nil {
		return fail("%v", err)
	}
	if killHook != nil && *snapDir == "" {
		return fail("-fault %s fires on snapshot saves; it needs -snapshot-dir (and usually -snapshot-every)", *fault)
	}
	var hook func(key string) error
	if killHook == nil {
		hook, err = faults.ParseHook(*fault)
		if err != nil {
			return fail("%v", err)
		}
	}
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			return fail("creating -snapshot-dir: %v", err)
		}
	}

	var cp *harness.Checkpoint
	if *checkpoint != "" {
		cp, err = harness.OpenCheckpoint(*checkpoint)
		if err != nil {
			return fail("%v", err)
		}
		defer cp.Close()
	}
	poolWorkers := *workers
	if *serial {
		poolWorkers = 1
	}
	var trig *snapshot.Trigger
	if *snapDir != "" {
		trig = new(snapshot.Trigger)
	}
	runner := harness.New(harness.Options{
		Workers:         poolWorkers,
		CellTimeout:     *timeout,
		Retries:         *retries,
		Seed:            *seed,
		Checkpoint:      cp,
		PreRun:          hook,
		SnapshotDir:     *snapDir,
		SnapshotEvery:   *snapEvery,
		SnapshotTrigger: trig,
		SnapshotOnSave:  killHook,
	})

	ctx, cancel := harness.NotifyShutdown(context.Background(), trig, *grace,
		func(msg string) { fmt.Fprintln(os.Stderr, "mayasim: "+msg) })
	defer cancel()

	sc := experiments.Scale{WarmupInstr: *warmup, ROIInstr: *roi, Seed: *seed, Parallel: !*serial}
	out := os.Stdout

	emit := func(t *report.Table, incomplete int) {
		if *csv {
			t.CSV(out)
		} else {
			t.Render(out)
		}
		if incomplete > 0 {
			fmt.Fprintf(out, "note: %d row(s) FAILED or missing; aggregates cover completed rows only\n", incomplete)
		}
		fmt.Fprintln(out)
	}

	var fig9Rows []experiments.Fig9Row
	var fig9OK []bool
	var fig10Rows []experiments.Fig10Row
	var fig10OK []bool

	runFig1 := func() {
		rows, ok, _ := experiments.Fig1Sweep(ctx, runner, sc)
		t := report.NewTable("Fig 1: % dead blocks inserted into a 2MB single-core LLC",
			"benchmark", "suite", "baseline dead%", "mirage dead%")
		var complete []experiments.Fig1Row
		for i, r := range rows {
			if ok[i] {
				t.AddRow(r.Bench, r.Suite, r.DeadBaseline, r.DeadMirage)
				complete = append(complete, r)
			} else {
				t.AddRow(r.Bench, r.Suite, "FAILED", "FAILED")
			}
		}
		if len(complete) > 0 {
			ab, am := experiments.Fig1Average(complete)
			t.AddRow("AVERAGE", "", ab, am)
		}
		emit(t, len(rows)-len(complete))
	}
	runFig4 := func() {
		rows, ok, _ := experiments.Fig4Sweep(ctx, runner, sc)
		t := report.NewTable("Fig 4: Maya performance vs reuse ways per skew (SPEC homogeneous, normalized WS)",
			"reuse ways/skew", "normalized WS")
		incomplete := 0
		for i, r := range rows {
			if ok[i] {
				t.AddRow(r.ReuseWays, r.NormWS)
			} else {
				t.AddRow(r.ReuseWays, "FAILED")
				incomplete++
			}
		}
		emit(t, incomplete)
	}
	runFig9Sweep := func() {
		if fig9Rows == nil {
			fig9Rows, fig9OK, _ = experiments.Fig9Sweep(ctx, runner, sc)
			sortFig9WithMask(fig9Rows, fig9OK)
		}
	}
	runFig9 := func() {
		runFig9Sweep()
		t := report.NewTable("Fig 9: 8-core homogeneous mixes (weighted speedup normalized to baseline)",
			"benchmark", "suite", "Mirage", "Maya", "base MPKI", "mirage MPKI", "maya MPKI")
		incomplete := 0
		for i, r := range fig9Rows {
			if fig9OK[i] {
				t.AddRow(r.Bench, r.Suite, r.NormMirage, r.NormMaya, r.MPKIBase, r.MPKIMirage, r.MPKIMaya)
			} else {
				t.AddRow(r.Bench, r.Suite, "FAILED", "FAILED", "", "", "")
				incomplete++
			}
		}
		for _, s := range experiments.SummarizeFig9(maskRows(fig9Rows, fig9OK)) {
			t.AddRow("GMEAN-"+s.Suite, "", s.NormMirage, s.NormMaya, "", "", "")
		}
		emit(t, incomplete)
	}
	runFig10Sweep := func() {
		if fig10Rows == nil {
			fig10Rows, fig10OK, _ = experiments.Fig10Sweep(ctx, runner, sc)
		}
	}
	runFig10 := func() {
		runFig10Sweep()
		t := report.NewTable("Fig 10: 8-core heterogeneous mixes (weighted speedup normalized to baseline)",
			"mix", "bin", "Mirage", "Maya")
		incomplete := 0
		for i, r := range fig10Rows {
			if fig10OK[i] {
				t.AddRow(r.Mix, string(r.Bin), r.NormMirage, r.NormMaya)
			} else {
				t.AddRow(r.Mix, string(r.Bin), "FAILED", "FAILED")
				incomplete++
			}
		}
		emit(t, incomplete)
	}
	runTable7 := func() {
		runFig9Sweep()
		runFig10Sweep()
		t := report.NewTable("Table VII: average LLC MPKI", "workloads", "Baseline", "Mirage", "Maya")
		for _, r := range experiments.Table7(maskRows(fig9Rows, fig9OK), maskRows(fig10Rows, fig10OK)) {
			t.AddRow(r.Class, r.Baseline, r.Mirage, r.Maya)
		}
		emit(t, countFalse(fig9OK)+countFalse(fig10OK))
	}
	runTable11 := func() {
		rows, ok, _ := experiments.Table11Sweep(ctx, runner, sc)
		t := report.NewTable("Table XI: secure partitioning techniques (8-core, SPEC homogeneous)",
			"technique", "performance %", "storage %")
		incomplete := 0
		for i, r := range rows {
			if ok[i] {
				t.AddRow(r.Technique, r.PerfDelta, r.StorageOver)
			} else {
				t.AddRow(r.Technique, "FAILED", r.StorageOver)
				incomplete++
			}
		}
		emit(t, incomplete)
	}
	runFitting := func() {
		rows, ok, _ := experiments.FittingSweep(ctx, runner, sc)
		t := report.NewTable("Section V-B: LLC-fitting benchmarks under Maya (normalized WS)",
			"benchmark", "Maya/baseline")
		var vals []float64
		for i, r := range rows {
			if ok[i] {
				t.AddRow(r.Label, r.NormMaya)
				vals = append(vals, r.NormMaya)
			} else {
				t.AddRow(r.Label, "FAILED")
			}
		}
		if len(vals) > 0 {
			t.AddRow("AVERAGE", metrics.Mean(vals))
		}
		emit(t, len(rows)-len(vals))
	}
	runCores := func() {
		rows, ok, _ := experiments.CoreCountSweep(ctx, runner, sc, nil)
		t := report.NewTable("Section V-B: core-count sensitivity (normalized WS)",
			"system", "Maya/baseline")
		incomplete := 0
		for i, r := range rows {
			if ok[i] {
				t.AddRow(r.Label, r.NormMaya)
			} else {
				t.AddRow(r.Label, "FAILED")
				incomplete++
			}
		}
		emit(t, incomplete)
	}
	runLLCSize := func() {
		rows, ok, _ := experiments.LLCSizeSweep(ctx, runner, sc, nil)
		t := report.NewTable("Section V-B: LLC-size sensitivity (Maya data store, normalized WS)",
			"configuration", "Maya/baseline")
		incomplete := 0
		for i, r := range rows {
			if ok[i] {
				t.AddRow(r.Label, r.NormMaya)
			} else {
				t.AddRow(r.Label, "FAILED")
				incomplete++
			}
		}
		emit(t, incomplete)
	}

	switch *exp {
	case "fig1":
		runFig1()
	case "fig4":
		runFig4()
	case "fig9":
		runFig9()
	case "fig10":
		runFig10()
	case "table7":
		runTable7()
	case "table11":
		runTable11()
	case "fitting":
		runFitting()
	case "cores":
		runCores()
	case "llcsize":
		runLLCSize()
	case "all":
		runFig1()
		runFig9()
		runFig10()
		runTable7()
		runFig4()
		runTable11()
		runFitting()
		runCores()
		runLLCSize()
	}

	if ctx.Err() != nil || trig.Fired() {
		fmt.Fprintln(os.Stderr, "mayasim: interrupted; partial tables above")
		switch {
		case trig.Fired() && *checkpoint != "":
			fmt.Fprintf(os.Stderr, "mayasim: cell snapshots saved under %s; rerun the same command to resume mid-cell from %s\n", *snapDir, *checkpoint)
		case *checkpoint != "":
			fmt.Fprintf(os.Stderr, "mayasim: rerun the same command to resume from %s\n", *checkpoint)
		default:
			fmt.Fprintln(os.Stderr, "mayasim: rerun with -checkpoint FILE to make interrupted sweeps resumable")
		}
		return 1
	}
	if runner.Failed() {
		runner.WriteFailureSummary(os.Stderr)
		if field, only := mismatchOnly(runner.Failures()); only {
			fmt.Fprintf(os.Stderr, "mayasim: all failures are stale-snapshot mismatches (field %q): the saved state was taken under a different configuration; rerun with the original flags, or delete the snapshot files and checkpoint entries to recompute\n", field)
			return 2
		}
		if badConfigOnly(runner.Failures()) {
			fmt.Fprintln(os.Stderr, "mayasim: all failures are invalid cache configurations (cachemodel.ErrBadConfig): no simulation ran for those cells; fix the configuration and rerun")
			return 2
		}
		return 1
	}
	return 0
}

// badConfigOnly reports whether every recorded failure unwraps to
// cachemodel.ErrBadConfig — a run whose only problem was asking for an
// unbuildable cache, which is usage error (exit 2), not a simulation
// failure (exit 1).
func badConfigOnly(fails []*harness.RunError) bool {
	if len(fails) == 0 {
		return false
	}
	for _, f := range fails {
		if !errors.Is(f.Err, cachemodel.ErrBadConfig) {
			return false
		}
	}
	return true
}

// mismatchOnly reports whether every recorded failure unwraps to a
// snapshot.MismatchError — a run that found only incompatible saved state
// and did no wrong otherwise — and names the first mismatched field.
func mismatchOnly(fails []*harness.RunError) (string, bool) {
	if len(fails) == 0 {
		return "", false
	}
	field := ""
	for _, f := range fails {
		var mm *snapshot.MismatchError
		if !errors.As(f.Err, &mm) {
			return "", false
		}
		if field == "" {
			field = mm.Field
		}
	}
	return field, true
}

func isValidExperiment(name string) bool {
	for _, v := range validExperiments {
		if name == v {
			return true
		}
	}
	return false
}

// suggestExperiments returns valid experiment names within edit distance 2
// of the (unknown) input, closest first.
func suggestExperiments(name string) []string {
	type cand struct {
		name string
		dist int
	}
	var cands []cand
	for _, v := range validExperiments {
		if d := editDistance(name, v); d <= 2 {
			cands = append(cands, cand{v, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].name < cands[j].name
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// sortFig9WithMask applies the Fig 9 display order (SPEC first, then by
// name) to rows and its completeness mask together.
func sortFig9WithMask(rows []experiments.Fig9Row, ok []bool) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := rows[idx[a]], rows[idx[b]]
		if ra.Suite != rb.Suite {
			return ra.Suite == "SPEC"
		}
		return ra.Bench < rb.Bench
	})
	outRows := make([]experiments.Fig9Row, len(rows))
	outOK := make([]bool, len(ok))
	for i, j := range idx {
		outRows[i] = rows[j]
		outOK[i] = ok[j]
	}
	copy(rows, outRows)
	copy(ok, outOK)
}

// maskRows filters rows down to the complete ones.
func maskRows[T any](rows []T, ok []bool) []T {
	out := make([]T, 0, len(rows))
	for i, r := range rows {
		if ok[i] {
			out = append(out, r)
		}
	}
	return out
}

func countFalse(mask []bool) int {
	n := 0
	for _, b := range mask {
		if !b {
			n++
		}
	}
	return n
}
