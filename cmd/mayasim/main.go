// Command mayasim runs the paper's performance experiments (Figures 1, 4,
// 9, 10; Tables VII and XI; the Section V-B sensitivity studies) on the
// synthetic-trace multi-core simulator.
//
// Usage:
//
//	mayasim -experiment fig9 [-warmup 2000000] [-roi 1000000] [-seed 1] [-csv]
//
// Experiments: fig1, fig4, fig9, fig10, table7, table11, fitting, cores, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"mayacache/internal/experiments"
	"mayacache/internal/report"
)

func main() {
	var (
		exp    = flag.String("experiment", "all", "experiment to run: fig1|fig4|fig9|fig10|table7|table11|fitting|cores|llcsize|all")
		warmup = flag.Uint64("warmup", 2_000_000, "warmup instructions per core")
		roi    = flag.Uint64("roi", 1_000_000, "measured instructions per core")
		seed   = flag.Uint64("seed", 1, "experiment seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of tables")
		serial = flag.Bool("serial", false, "disable parallel configuration runs")
	)
	flag.Parse()

	sc := experiments.Scale{WarmupInstr: *warmup, ROIInstr: *roi, Seed: *seed, Parallel: !*serial}
	out := os.Stdout

	emit := func(t *report.Table) {
		if *csv {
			t.CSV(out)
		} else {
			t.Render(out)
		}
		fmt.Fprintln(out)
	}

	var fig9Rows []experiments.Fig9Row
	var fig10Rows []experiments.Fig10Row

	runFig1 := func() {
		rows := experiments.Fig1(sc)
		t := report.NewTable("Fig 1: % dead blocks inserted into a 2MB single-core LLC",
			"benchmark", "suite", "baseline dead%", "mirage dead%")
		for _, r := range rows {
			t.AddRow(r.Bench, r.Suite, r.DeadBaseline, r.DeadMirage)
		}
		ab, am := experiments.Fig1Average(rows)
		t.AddRow("AVERAGE", "", ab, am)
		emit(t)
	}
	runFig4 := func() {
		rows := experiments.Fig4(sc)
		t := report.NewTable("Fig 4: Maya performance vs reuse ways per skew (SPEC homogeneous, normalized WS)",
			"reuse ways/skew", "normalized WS")
		for _, r := range rows {
			t.AddRow(r.ReuseWays, r.NormWS)
		}
		emit(t)
	}
	runFig9 := func() {
		fig9Rows = experiments.Fig9(sc)
		experiments.SortFig9(fig9Rows)
		t := report.NewTable("Fig 9: 8-core homogeneous mixes (weighted speedup normalized to baseline)",
			"benchmark", "suite", "Mirage", "Maya", "base MPKI", "mirage MPKI", "maya MPKI")
		for _, r := range fig9Rows {
			t.AddRow(r.Bench, r.Suite, r.NormMirage, r.NormMaya, r.MPKIBase, r.MPKIMirage, r.MPKIMaya)
		}
		for _, s := range experiments.SummarizeFig9(fig9Rows) {
			t.AddRow("GMEAN-"+s.Suite, "", s.NormMirage, s.NormMaya, "", "", "")
		}
		emit(t)
	}
	runFig10 := func() {
		fig10Rows = experiments.Fig10(sc)
		t := report.NewTable("Fig 10: 8-core heterogeneous mixes (weighted speedup normalized to baseline)",
			"mix", "bin", "Mirage", "Maya")
		for _, r := range fig10Rows {
			t.AddRow(r.Mix, string(r.Bin), r.NormMirage, r.NormMaya)
		}
		emit(t)
	}
	runTable7 := func() {
		if fig9Rows == nil {
			fig9Rows = experiments.Fig9(sc)
		}
		if fig10Rows == nil {
			fig10Rows = experiments.Fig10(sc)
		}
		t := report.NewTable("Table VII: average LLC MPKI", "workloads", "Baseline", "Mirage", "Maya")
		for _, r := range experiments.Table7(fig9Rows, fig10Rows) {
			t.AddRow(r.Class, r.Baseline, r.Mirage, r.Maya)
		}
		emit(t)
	}
	runTable11 := func() {
		t := report.NewTable("Table XI: secure partitioning techniques (8-core, SPEC homogeneous)",
			"technique", "performance %", "storage %")
		for _, r := range experiments.Table11(sc) {
			t.AddRow(r.Technique, r.PerfDelta, r.StorageOver)
		}
		emit(t)
	}
	runFitting := func() {
		t := report.NewTable("Section V-B: LLC-fitting benchmarks under Maya (normalized WS)",
			"benchmark", "Maya/baseline")
		rows := experiments.LLCFittingSensitivity(sc)
		sum := 0.0
		for _, r := range rows {
			t.AddRow(r.Label, r.NormMaya)
			sum += r.NormMaya
		}
		t.AddRow("AVERAGE", sum/float64(len(rows)))
		emit(t)
	}
	runCores := func() {
		t := report.NewTable("Section V-B: core-count sensitivity (normalized WS)",
			"system", "Maya/baseline")
		for _, r := range experiments.CoreCountSensitivity(sc, nil) {
			t.AddRow(r.Label, r.NormMaya)
		}
		emit(t)
	}
	runLLCSize := func() {
		t := report.NewTable("Section V-B: LLC-size sensitivity (Maya data store, normalized WS)",
			"configuration", "Maya/baseline")
		for _, r := range experiments.LLCSizeSensitivity(sc, nil) {
			t.AddRow(r.Label, r.NormMaya)
		}
		emit(t)
	}

	switch *exp {
	case "fig1":
		runFig1()
	case "fig4":
		runFig4()
	case "fig9":
		runFig9()
	case "fig10":
		runFig10()
	case "table7":
		runTable7()
	case "table11":
		runTable11()
	case "fitting":
		runFitting()
	case "cores":
		runCores()
	case "llcsize":
		runLLCSize()
	case "all":
		runFig1()
		runFig9()
		runFig10()
		runTable7()
		runFig4()
		runTable11()
		runFitting()
		runCores()
		runLLCSize()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
