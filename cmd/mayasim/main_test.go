package main

import (
	"errors"
	"fmt"
	"testing"

	"mayacache/internal/cachemodel"
	"mayacache/internal/harness"
	"mayacache/internal/snapshot"
)

// TestBadConfigOnly pins the exit-2 taxonomy: a run whose only failures
// are invalid cache configurations is usage error, but a single real
// simulation failure in the mix demotes it back to exit 1.
func TestBadConfigOnly(t *testing.T) {
	bad := &harness.RunError{Err: fmt.Errorf("cell: %w",
		cachemodel.BadConfigf("cachemodel: Cores must be positive, got 0"))}
	sim := &harness.RunError{Err: errors.New("panic: index out of range")}
	cases := []struct {
		name  string
		fails []*harness.RunError
		want  bool
	}{
		{"no failures", nil, false},
		{"all bad config", []*harness.RunError{bad, bad}, true},
		{"mixed", []*harness.RunError{bad, sim}, false},
		{"all simulation", []*harness.RunError{sim}, false},
	}
	for _, c := range cases {
		if got := badConfigOnly(c.fails); got != c.want {
			t.Errorf("%s: badConfigOnly = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestMismatchOnly covers the sibling stale-snapshot classification.
func TestMismatchOnly(t *testing.T) {
	mm := &harness.RunError{Err: fmt.Errorf("cell: %w",
		&snapshot.MismatchError{Field: "seed", Want: "1", Got: "2"})}
	sim := &harness.RunError{Err: errors.New("boom")}
	if field, only := mismatchOnly([]*harness.RunError{mm, mm}); !only || field != "seed" {
		t.Errorf("mismatchOnly(all mm) = %q,%v, want \"seed\",true", field, only)
	}
	if _, only := mismatchOnly([]*harness.RunError{mm, sim}); only {
		t.Error("mismatchOnly accepted a mixed failure list")
	}
	if _, only := mismatchOnly(nil); only {
		t.Error("mismatchOnly accepted an empty failure list")
	}
}
