// Command attacksim runs the paper's attack experiments: the Fig 8 LLC
// occupancy attack (distinguishing two AES keys and two modular-
// exponentiation keys through the cache-occupancy channel on a 16-way
// set-associative cache, the Maya cache, and a fully-associative cache),
// and an eviction-set construction comparison across designs.
//
// Usage:
//
//	attacksim -experiment fig8 [-runs 5] [-max 20000] [-sets 64]
//	attacksim -experiment evictionset
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mayacache/internal/attack"
	"mayacache/internal/baseline"
	"mayacache/internal/cachemodel"
	"mayacache/internal/ceaser"
	maya "mayacache/internal/core"
	"mayacache/internal/harness"
	"mayacache/internal/mirage"
	"mayacache/internal/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp     = flag.String("experiment", "all", "fig8|evictionset|all")
		runs    = flag.Int("runs", 3, "attack repetitions (median reported)")
		max     = flag.Int("max", 20000, "max encryptions per attack")
		sets    = flag.Int("sets", 64, "cache sets (scale knob; 64 = 256KB-class caches)")
		noise   = flag.Int("noise", 16, "background noise accesses per sample")
		seed    = flag.Uint64("seed", 1, "seed")
		workers = flag.Int("workers", 1, "worker pool width for attack repetitions (1 = historical serial run; never affects results)")
	)
	flag.Parse()
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "attacksim: -workers must be >= 1, got %d\n", *workers)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := harness.New(harness.Options{Workers: 1})
	// runExp isolates one experiment: a panic in it becomes a structured
	// failure on the shared runner while the other experiments still run.
	runExp := func(name string, fn func() error) {
		_, _, _ = harness.RunCells(ctx, runner, name, []string{"-"}, func(context.Context, int) (struct{}, error) {
			return struct{}{}, fn()
		})
	}

	switch *exp {
	case "fig8":
		runExp("fig8", func() error { return fig8(ctx, *sets, *runs, *max, *noise, *workers, *seed) })
	case "evictionset":
		runExp("evictionset", func() error { return evictionSets(*sets, *seed) })
	case "all":
		runExp("fig8", func() error { return fig8(ctx, *sets, *runs, *max, *noise, *workers, *seed) })
		runExp("evictionset", func() error { return evictionSets(*sets, *seed) })
	default:
		fmt.Fprintf(os.Stderr, "attacksim: unknown experiment %q (valid: fig8, evictionset, all)\n", *exp)
		return 2
	}

	if runner.Failed() {
		runner.WriteFailureSummary(os.Stderr)
		return 1
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "attacksim: interrupted")
		return 1
	}
	return 0
}

// designUnderAttack builds each Fig 8 cache plus its occupancy-set size:
// equal to capacity for the deterministic LRU cache, twice capacity for
// the random-replacement designs (whose probe must churn the cache).
type designUnderAttack struct {
	name      string
	mk        func(seed uint64) cachemodel.LLC
	occupancy int
}

// mustLLC unwraps a checked constructor; attacksim's geometries are
// static, so a construction error is a programming bug.
func mustLLC(c cachemodel.LLC, err error) cachemodel.LLC {
	if err != nil {
		panic(err)
	}
	return c
}

func fig8Designs(sets int) []designUnderAttack {
	capacity := sets * 16
	return []designUnderAttack{
		{
			name: "16-way SA",
			mk: func(seed uint64) cachemodel.LLC {
				return mustLLC(baseline.NewChecked(baseline.Config{Sets: sets, Ways: 16, Replacement: baseline.LRU, Seed: seed, MatchSDID: true}))
			},
			occupancy: capacity,
		},
		{
			name: "Maya",
			mk: func(seed uint64) cachemodel.LLC {
				return mustLLC(maya.NewChecked(maya.Config{
					SetsPerSkew: sets, Skews: 2, BaseWays: 6, ReuseWays: 3, InvalidWays: 6,
					Seed: seed,
				}))
			},
			occupancy: 2 * sets * 2 * 6,
		},
		{
			name: "Fully associative",
			mk: func(seed uint64) cachemodel.LLC {
				return mustLLC(baseline.NewFullyAssociativeChecked(capacity, seed, true))
			},
			occupancy: 2 * capacity,
		},
	}
}

func fig8(ctx context.Context, sets, runs, max, noise, workers int, seed uint64) error {
	t := report.NewTable(
		"Fig 8: occupancy attack — encryptions to distinguish two keys (median)",
		"design", "AES", "AES (normalized to FA)", "ModExp", "ModExp (normalized)")
	type row struct {
		name        string
		aes, modexp float64
	}
	// Pick two AES keys with contrasting reuse profiles, as the paper's
	// attacker does. Attack repetitions fan across the Monte-Carlo pool;
	// worker count never changes the medians.
	keyA, keyB := attack.FindContrastingAESKeys(64, 16, seed)
	var rows []row
	for _, d := range fig8Designs(sets) {
		aesN, err := attack.Trials{Runs: runs, Workers: workers, Seed: seed}.
			MedianDistinguishCtx(ctx, d.mk, func(c cachemodel.LLC) (attack.Victim, attack.Victim) {
				va := attack.NewAESVictim(keyA, 1<<20, 16, attack.CacheToucher(c, 2))
				vb := attack.NewAESVictim(keyB, 1<<20, 16, attack.CacheToucher(c, 3))
				return va, vb
			}, d.occupancy, noise, max, 4.5)
		if err != nil {
			return err
		}
		mexN, err := attack.Trials{Runs: runs, Workers: workers, Seed: seed + 77}.
			MedianDistinguishCtx(ctx, d.mk, func(c cachemodel.LLC) (attack.Victim, attack.Victim) {
				va := attack.NewModExpVictim(1, 64, 1<<21, attack.CacheToucher(c, 2))
				vb := attack.NewModExpVictim(4, 64, 1<<21, attack.CacheToucher(c, 3))
				return va, vb
			}, d.occupancy, noise, max, 4.5)
		if err != nil {
			return err
		}
		rows = append(rows, row{d.name, aesN, mexN})
	}
	fa := rows[len(rows)-1]
	for _, r := range rows {
		t.AddRow(r.name,
			fmt.Sprintf("%.0f", r.aes), fmt.Sprintf("%.3f", r.aes/fa.aes),
			fmt.Sprintf("%.0f", r.modexp), fmt.Sprintf("%.3f", r.modexp/fa.modexp))
	}
	t.Render(os.Stdout)
	fmt.Println()
	return nil
}

// evictionSets demonstrates why Maya/Mirage eliminate conflict attacks:
// eviction-set construction succeeds against conventional and
// CEASER-family designs (with SAEs as the tell-tale) and fails against the
// global-eviction designs.
func evictionSets(sets int, seed uint64) error {
	t := report.NewTable("Eviction-set construction across designs",
		"design", "found", "set size", "SAEs observed", "attacker accesses")
	designs := []struct {
		name string
		mk   func() cachemodel.LLC
	}{
		{"Baseline 16-way", func() cachemodel.LLC {
			return mustLLC(baseline.NewChecked(baseline.Config{Sets: sets, Ways: 16, Replacement: baseline.LRU, Seed: seed, MatchSDID: true}))
		}},
		{"CEASER", func() cachemodel.LLC {
			return mustLLC(ceaser.NewChecked(ceaser.Config{Sets: sets, Ways: 16, Variant: ceaser.CEASER, Seed: seed}))
		}},
		{"CEASER-S", func() cachemodel.LLC {
			return mustLLC(ceaser.NewChecked(ceaser.Config{Sets: sets, Ways: 16, Variant: ceaser.CEASERS, Seed: seed}))
		}},
		{"ScatterCache", func() cachemodel.LLC {
			return mustLLC(ceaser.NewChecked(ceaser.Config{Sets: sets, Ways: 16, Variant: ceaser.ScatterCache, Seed: seed}))
		}},
		{"Mirage", func() cachemodel.LLC {
			return mustLLC(mirage.NewChecked(mirage.Config{SetsPerSkew: sets, Skews: 2, BaseWays: 8, ExtraWays: 6, Seed: seed}))
		}},
		{"Maya", func() cachemodel.LLC {
			return mustLLC(maya.NewChecked(maya.Config{SetsPerSkew: sets, Skews: 2, BaseWays: 6, ReuseWays: 3, InvalidWays: 6, Seed: seed}))
		}},
	}
	for _, d := range designs {
		res := attack.BuildEvictionSet(d.mk(), 0x12345, sets*64, 80_000_000, seed)
		t.AddRow(d.name, res.Found, res.SetSize, res.SAEsObserved, res.AccessesUsed)
	}
	t.Render(os.Stdout)
	fmt.Println()
	return nil
}
