module cligolden

go 1.22
