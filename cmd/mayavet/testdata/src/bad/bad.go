// Package bad pins two findings for the CLI golden-output test. Edits
// here must be mirrored in ../../golden.json.
package bad

// Keys leaks map iteration order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Flush drops the error from a pretend results writer.
func Flush() {
	write()
}

func write() error { return nil }
