// Package cleanpkg has nothing to report: the CLI must exit 0 on it.
package cleanpkg

// Double is as deterministic as code gets.
func Double(x int) int { return 2 * x }
