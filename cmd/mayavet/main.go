// Command mayavet runs the repository's simulator-specific static
// analyzers over Go packages:
//
//	go run ./cmd/mayavet ./...
//
// Analyzers (see internal/vet for the rationale behind each):
//
//	randsource     randomness outside internal/rng (math/rand, crypto/rand,
//	               wall-clock seeds) that would break reproducibility
//	maporder       map iteration order leaking into simulation state
//	uncheckederr   silently dropped error returns
//	narrowcast     unchecked narrowing conversions on index/pointer fields
//	seedflow       nondeterminism sources flowing into state, results,
//	               snapshot payloads, or rng seed material (interprocedural)
//	snapshotfields stateful struct fields missing from the MAYASNAP codec
//	goroutinectx   goroutines with no reachable cancellation path
//	atomicmix      fields accessed both atomically and with plain loads
//
// Exit taxonomy: 0 clean, 1 findings, 2 usage or load error. Findings are
// printed in file:line:col form (-format json for the machine interface);
// a -baseline file filters previously accepted findings so new code is
// held to the full suite while legacy findings are burned down
// incrementally. Individual lines are suppressed with
// `//mayavet:ignore [analyzer] -- reason` directives.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mayacache/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mayavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only      = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		list      = fs.Bool("list", false, "list analyzers and exit")
		typeerr   = fs.Bool("typeerrors", false, "also print type-checker diagnostics")
		format    = fs.String("format", "text", "output format: text or json")
		baseline  = fs.String("baseline", "", "baseline file of accepted findings (empty file = repo must be clean)")
		writeBase = fs.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mayavet [flags] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the Maya simulator's static analyzers over the given package\n")
		fmt.Fprintf(stderr, "patterns (default ./...). Exits 1 when any finding survives.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "mayavet: unknown -format %q (want text or json)\n", *format)
		return 2
	}

	analyzers := vet.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		known := map[string]*vet.Analyzer{}
		for _, a := range analyzers {
			known[a.Name] = a
		}
		var filtered []*vet.Analyzer
		seen := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := known[name]
			if !ok {
				fmt.Fprintf(stderr, "mayavet: unknown analyzer %q\n", name)
				return 2
			}
			if !seen[name] {
				seen[name] = true
				filtered = append(filtered, a)
			}
		}
		analyzers = filtered
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "mayavet: %v\n", err)
		return 2
	}
	pkgs, err := vet.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "mayavet: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not pass vacuously in CI.
		fmt.Fprintf(stderr, "mayavet: no packages matched %s\n", strings.Join(patterns, " "))
		return 2
	}
	if *typeerr {
		for _, p := range pkgs {
			for _, e := range p.TypeErrors {
				fmt.Fprintf(stderr, "mayavet: typecheck %s: %v\n", p.ImportPath, e)
			}
		}
	}

	findings := vet.RunAnalyzers(pkgs, analyzers)

	if *writeBase != "" {
		if err := vet.WriteBaseline(*writeBase, findings, cwd); err != nil {
			fmt.Fprintf(stderr, "mayavet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "mayavet: wrote %d finding(s) to %s\n", len(findings), *writeBase)
		return 0
	}
	if *baseline != "" {
		b, err := vet.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "mayavet: %v\n", err)
			return 2
		}
		findings = b.Filter(findings, cwd)
	}

	if *format == "json" {
		if err := vet.WriteJSON(stdout, findings, cwd); err != nil {
			fmt.Fprintf(stderr, "mayavet: %v\n", err)
			return 2
		}
	} else {
		vet.WriteText(stdout, findings, cwd)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "mayavet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
