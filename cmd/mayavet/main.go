// Command mayavet runs the repository's simulator-specific static
// analyzers over Go packages:
//
//	go run ./cmd/mayavet ./...
//
// Analyzers (see internal/vet for the rationale behind each):
//
//	randsource   randomness outside internal/rng (math/rand, crypto/rand,
//	             wall-clock seeds) that would break reproducibility
//	maporder     map iteration order leaking into simulation state
//	uncheckederr silently dropped error returns
//	narrowcast   unchecked narrowing conversions on index/pointer fields
//
// Findings are printed in file:line:col form and make the tool exit 1, so
// it slots directly into `make vet` / CI. Individual lines are suppressed
// with `//mayavet:ignore [analyzer] -- reason` directives.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mayacache/internal/vet"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		typeerr = flag.Bool("typeerrors", false, "also print type-checker diagnostics")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mayavet [flags] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the Maya simulator's static analyzers over the given package\n")
		fmt.Fprintf(os.Stderr, "patterns (default ./...). Exits 1 when any finding survives.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := vet.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*vet.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "mayavet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mayavet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := vet.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mayavet: %v\n", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		// A typo'd pattern must not pass vacuously in CI.
		fmt.Fprintf(os.Stderr, "mayavet: no packages matched %s\n", strings.Join(patterns, " "))
		os.Exit(2)
	}
	if *typeerr {
		for _, p := range pkgs {
			for _, e := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "mayavet: typecheck %s: %v\n", p.ImportPath, e)
			}
		}
	}

	findings := vet.RunAnalyzers(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mayavet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
