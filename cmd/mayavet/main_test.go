package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirFixture moves the test into the CLI fixture module; run() resolves
// patterns and relativizes paths against the working directory.
func chdirFixture(t *testing.T) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestJSONGoldenOutput pins the machine interface: stable field order,
// relativized paths, sorted findings, exit 1.
func TestJSONGoldenOutput(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	chdirFixture(t)
	code, stdout, stderr := runCLI(t, "-format", "json", "./...")
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d (stderr: %s)", code, stderr)
	}
	if stdout != string(golden) {
		t.Errorf("JSON output drifted from golden:\ngot:\n%s\nwant:\n%s", stdout, golden)
	}
}

func TestExitZeroOnCleanPackage(t *testing.T) {
	chdirFixture(t)
	code, stdout, stderr := runCLI(t, "-format", "json", "./cleanpkg/...")
	if code != 0 {
		t.Fatalf("want exit 0 on clean package, got %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, `"count": 0`) {
		t.Errorf("clean run should report count 0, got:\n%s", stdout)
	}
}

// TestExitTwoTaxonomy covers the usage/load-error class.
func TestExitTwoTaxonomy(t *testing.T) {
	chdirFixture(t)
	cases := []struct {
		name string
		args []string
	}{
		{"unknown analyzer", []string{"-only", "nosuch", "./..."}},
		{"unknown format", []string{"-format", "xml", "./..."}},
		{"no packages matched", []string{"./nosuchdir/..."}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	}
	for _, tc := range cases {
		if code, _, _ := runCLI(t, tc.args...); code != 2 {
			t.Errorf("%s: want exit 2, got %d", tc.name, code)
		}
	}
}

// TestBaselineWorkflow exercises -write-baseline then -baseline: accepted
// findings stop failing the run, and an empty baseline file means clean.
func TestBaselineWorkflow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	chdirFixture(t)

	code, _, stderr := runCLI(t, "-write-baseline", base, "./...")
	if code != 0 {
		t.Fatalf("write-baseline: want exit 0, got %d (stderr: %s)", code, stderr)
	}

	code, stdout, _ := runCLI(t, "-baseline", base, "-format", "json", "./...")
	if code != 0 {
		t.Fatalf("baselined run: want exit 0, got %d\n%s", code, stdout)
	}

	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, _ = runCLI(t, "-baseline", empty, "./...")
	if code != 1 {
		t.Fatalf("empty baseline must not swallow findings: want exit 1, got %d", code)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list: want exit 0, got %d", code)
	}
	for _, name := range []string{
		"randsource", "maporder", "uncheckederr", "narrowcast",
		"seedflow", "snapshotfields", "goroutinectx", "atomicmix",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %s", name)
		}
	}
}
