// Command tracegen inspects the synthetic workload models: it prints
// per-benchmark single-run diagnostics (IPC, MPKI, dead-block fraction,
// DRAM behaviour) for any design, and can dump raw trace events. It is the
// calibration companion to cmd/mayasim.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"mayacache/internal/cachesim"
	"mayacache/internal/experiments"
	"mayacache/internal/report"
	"mayacache/internal/trace"
)

func main() {
	var (
		bench  = flag.String("bench", "mcf", "benchmark name or 'all'")
		design = flag.String("design", "Baseline", "Baseline|Mirage|Mirage-Lite|Maya|Maya-ISO")
		cores  = flag.Int("cores", 1, "number of cores (homogeneous)")
		warmup = flag.Uint64("warmup", 1_000_000, "warmup instructions per core")
		roi    = flag.Uint64("roi", 500_000, "ROI instructions per core")
		seed   = flag.Uint64("seed", 1, "seed")
		dump   = flag.Int("dump", 0, "dump N raw trace events and exit")
	)
	flag.Parse()

	if *dump > 0 {
		g := trace.MustGenerator(trace.MustLookup(*bench), 0, *seed)
		for i := 0; i < *dump; i++ {
			e := g.Next()
			fmt.Printf("gap=%d line=%#x write=%v\n", e.Gap, e.Line, e.Write)
		}
		return
	}

	benches := []string{*bench}
	if *bench == "all" {
		benches = append(trace.SpecMemIntensive(), trace.GapMemIntensive()...)
	}
	t := report.NewTable(
		fmt.Sprintf("%s @ %d cores (warmup %d, roi %d)", *design, *cores, *warmup, *roi),
		"bench", "IPC0", "MPKI", "dead%", "taghit%", "datahit%", "dram R", "dram W", "rowhit%")
	for _, b := range benches {
		res := diag(b, experiments.Design(*design), *cores, *warmup, *roi, *seed)
		st := res.LLCStats
		rowHit := 0.0
		if res.DRAMRowHits+res.DRAMRowMisses > 0 {
			rowHit = float64(res.DRAMRowHits) / float64(res.DRAMRowHits+res.DRAMRowMisses) * 100
		}
		t.AddRow(b,
			res.Cores[0].IPC,
			res.MPKI(),
			st.DeadBlockFraction()*100,
			pct(st.TagHits, st.Accesses),
			pct(st.DataHits, st.Accesses),
			fmt.Sprintf("%d", res.DRAMReads),
			fmt.Sprintf("%d", res.DRAMWrites),
			rowHit)
	}
	t.Render(os.Stdout)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

func diag(bench string, d experiments.Design, cores int, warmup, roi, seed uint64) cachesim.Results {
	if !valid(d) {
		fmt.Fprintf(os.Stderr, "unknown design %q\n", d)
		os.Exit(2)
	}
	gens := make([]trace.Generator, cores)
	for i := range gens {
		gens[i] = trace.MustGenerator(trace.MustLookup(bench), i, seed)
	}
	llc := experiments.NewLLC(d, experiments.LLCOptions{Cores: cores, Seed: seed, FastHash: true})
	sys := cachesim.New(cachesim.Config{
		Cores: cores,
		Core:  cachesim.DefaultCoreParams(),
		LLC:   llc,
		DRAM:  cachesim.DefaultDRAMConfig(),
		Seed:  seed,
	}, gens)
	res, err := cachesim.Run(context.Background(), sys, cachesim.RunSpec{Warmup: warmup, ROI: roi})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", err)
		os.Exit(1)
	}
	return res
}

func valid(d experiments.Design) bool {
	for _, k := range []experiments.Design{
		experiments.DesignBaseline, experiments.DesignMirage, experiments.DesignMirageLite,
		experiments.DesignMaya, experiments.DesignMayaISO,
	} {
		if d == k {
			return true
		}
	}
	return strings.EqualFold(string(d), "baseline")
}
