// Command mayabench runs the simulator's continuous benchmark suite and
// writes a machine-readable report.
//
// Usage:
//
//	mayabench [-quick] [-out BENCH.json] [-seed 1] [-compare baseline.json]
//
// The suite measures the cost of *simulating* each registered LLC design
// (Maya, Mirage, Baseline, CEASER-S), not the designs' architectural
// behavior: per-design access-path microbenchmarks (ns/access,
// allocs/access, bytes/access) and a 4-core mixed-workload macro run
// (trace events per second). Workloads are pinned and seed-deterministic
// so numbers are comparable across commits on the same machine.
//
// The micro tier reports two rows per randomized design: the overhead
// tier (XorHasher, memo off — simulator bookkeeping, comparable across
// history) and the real tier (production PRINCE hasher with the
// epoch-tagged index memo, reporting the memo hit rate). -memo=off
// disables the memo on real-tier rows to quantify what it buys.
//
// -quick shrinks instruction budgets ~5x for CI smoke runs. A summary is
// printed to stdout; the full report goes to -out as indented JSON.
// -compare loads a previously written report and fails (exit 1) when any
// micro or macro row regresses more than 10% against its baseline row
// after normalizing out the run-wide machine-speed factor — the CI perf
// gate (see bench.CompareMicro/CompareMacro for the exact rule;
// cpus_limited parallel rows are excluded).
//
// Exit status: 0 on success, 1 when any benchmark fails, 2 on flag
// misuse.
package main

import (
	"flag"
	"fmt"
	"os"

	"mayacache/internal/bench"
	"mayacache/internal/pprofutil"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "shrink instruction budgets ~5x (CI smoke run)")
	out := flag.String("out", "BENCH.json", "path for the JSON report")
	seed := flag.Uint64("seed", 1, "seed for all benchmark randomness")
	compare := flag.String("compare", "", "baseline BENCH.json: fail when any micro or macro row regresses more than 10% against it (machine-speed normalized)")
	memo := flag.String("memo", "on", "index memoization for real-hash micro rows: on or off (off quantifies what the memo buys; results are identical either way)")
	microOnly := flag.Bool("micro", false, "run only the micro tier (for profiling the access path)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "mayabench: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		return 2
	}
	if *memo != "on" && *memo != "off" {
		fmt.Fprintf(os.Stderr, "mayabench: -memo must be on or off, got %q\n", *memo)
		return 2
	}
	stopCPU, err := pprofutil.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mayabench: %v\n", err)
		return 2
	}
	defer stopCPU()
	defer func() {
		if err := pprofutil.WriteHeap(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "mayabench: %v\n", err)
		}
	}()

	r, err := bench.Run(bench.Options{
		Quick:     *quick,
		Seed:      *seed,
		MemoOff:   *memo == "off",
		MicroOnly: *microOnly,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mayabench: %v\n", err)
		return 1
	}
	if err := r.WriteJSON(*out); err != nil {
		fmt.Fprintf(os.Stderr, "mayabench: %v\n", err)
		return 1
	}

	fmt.Printf("%-10s %9s %12s %14s %14s %9s\n", "design", "hasher", "ns/access", "allocs/access", "B/access", "memo hit")
	for _, m := range r.Micro {
		hasher, hit := "xor", "-"
		if m.RealHash {
			hasher = "real"
			hit = fmt.Sprintf("%8.2f%%", m.MemoHitRate*100)
		}
		fmt.Printf("%-10s %9s %12.1f %14.4f %14.1f %9s\n",
			m.Design, hasher, m.NsPerAccess, m.AllocsPerAccess, m.BytesPerAccess, hit)
	}
	fmt.Println()
	fmt.Printf("%-10s %4s %14s %10s %8s %8s\n", "design", "par", "events/sec", "events", "IPCsum", "speedup")
	for _, m := range r.Macro {
		limited := ""
		if m.CpusLimited {
			limited = "  (cpus limited)"
		}
		fmt.Printf("%-10s %4d %14.0f %10d %8.3f %7.2fx%s\n", m.Design, m.Parallelism, m.EventsPerSec, m.Events, m.IPCSum, m.Speedup, limited)
	}
	fmt.Println()
	fmt.Printf("%-12s %7s %8s %14s %8s\n", "mc config", "shards", "workers", "iters/sec", "speedup")
	for _, m := range r.MC {
		fmt.Printf("%-12s %7d %8d %14.0f %8.2fx\n", m.Label, m.Shards, m.Workers, m.ItersPerSec, m.Speedup)
	}
	fmt.Println()
	fmt.Printf("%-10s %9s %6s %5s %12s %12s %10s %9s\n",
		"serve", "submitted", "shed", "rate", "admit p99", "turn p99", "sess/sec", "workers")
	for _, m := range r.Serve {
		fmt.Printf("%-10s %9d %6d %5.2f %10.2fms %10.2fms %10.2f %9d\n",
			m.Label, m.Submitted, m.Shed, m.ShedRate, m.AdmitP99MS, m.TurnP99MS, m.SessionsPerSec, m.Workers)
	}
	fmt.Printf("\nreport written to %s\n", *out)
	if *compare != "" {
		base, err := bench.ReadJSON(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mayabench: %v\n", err)
			return 1
		}
		if err := bench.CompareMicro(r, base, 0.10); err != nil {
			fmt.Fprintf(os.Stderr, "mayabench: %v\n", err)
			return 1
		}
		if err := bench.CompareMacro(r, base, 0.10); err != nil {
			fmt.Fprintf(os.Stderr, "mayabench: %v\n", err)
			return 1
		}
		fmt.Printf("micro and macro throughput within 10%% of %s\n", *compare)
	}
	return 0
}
