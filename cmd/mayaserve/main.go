// Command mayaserve runs the crash-resilient simulation service
// (internal/serve) and its client verbs: tenants submit experiment specs
// over HTTP, the daemon schedules them on a bounded worker pool with
// per-tenant admission quotas and load shedding, and every admitted
// session survives kill -9 — the journal plus per-session MAYASNAP
// snapshots let a restarted daemon resume mid-ROI with at most one
// snapshot interval of recomputation.
//
// Usage:
//
//	mayaserve serve   -data-dir DIR [-addr HOST:PORT] [-addr-file FILE]
//	                  [-pid-file FILE] [-workers N] [-snapshot-every N]
//	                  [-tenant-running N] [-tenant-queued N]
//	                  [-global-queued N] [-shed-p99 DUR] [-deadline DUR]
//	                  [-grace 30s] [-jitter-seed S] [-fault SPEC]...
//	mayaserve submit  -addr HOST:PORT -tenant T [-design D] [-bench B]
//	                  [-cores N] [-warmup N] [-roi N] [-seed S]
//	                  [-deadline-ms N] [-retries N]
//	mayaserve wait    -addr HOST:PORT [-timeout DUR] ID...
//	mayaserve result  -addr HOST:PORT ID
//	mayaserve swarm   -addr HOST:PORT [-tenants N] [-per N] [spec flags]
//
// serve owns the data directory: journal.jsonl is the fsync'd session
// manifest (a session is acknowledged only after its record is durable)
// and cells/ holds mid-run simulator state. The first SIGINT/SIGTERM
// starts a graceful drain — admissions get 503, running sessions
// snapshot their exact state and park — and the process exits 0 once
// idle; a second signal or the -grace deadline hard-cancels (exit 1).
// Restarting with the same -data-dir re-admits every unfinished session.
//
// -fault injects service faults for chaos drills (repeatable):
// slowtenant:<tenant>:<dur> stalls that tenant's runs (admission and
// shedding still observable), snapfail:<substr>:<n> fails the n-th
// snapshot write of matching sessions, killsnap:<substr>:<n> SIGKILLs
// the whole daemon at the n-th durable save of a matching session —
// the recovery path's test harness.
//
// submit prints the new session ID on stdout; on a 429 it honors the
// server's Retry-After hint and retries. wait polls until every listed
// session reaches a terminal state, tolerating connection failures so it
// rides through a daemon restart. result prints the session's Results
// JSON verbatim — byte-identical across daemons that computed the same
// session, which is how the chaos smoke test checks recovery.
//
// Exit status: 0 success (serve: clean drain); 1 runtime failure,
// failed/hard-cancelled sessions; 2 usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mayacache/internal/faults"
	"mayacache/internal/harness"
	"mayacache/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintln(os.Stderr, "usage: mayaserve <serve|submit|wait|result|swarm> [flags]")
	fmt.Fprintln(os.Stderr, "run 'mayaserve <subcommand> -h' for subcommand flags")
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:])
	case "submit":
		return runSubmit(args[1:])
	case "wait":
		return runWait(args[1:])
	case "result":
		return runResult(args[1:])
	case "swarm":
		return runSwarm(args[1:])
	case "-h", "-help", "--help":
		return usage()
	default:
		fmt.Fprintf(os.Stderr, "mayaserve: unknown subcommand %q\n", args[0])
		return usage()
	}
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "mayaserve: "+format+"\n", args...)
	return 2
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mayaserve: "+format+"\n", args...)
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// parseFaults splits -fault specs into serve injectors and an OnSave
// chain of killsnap crash hooks.
func parseFaults(specs []string) ([]*faults.ServeFault, func(key string, saves int), error) {
	var svc []*faults.ServeFault
	var kills []func(key string, saves int)
	for _, spec := range specs {
		sf, err := faults.ParseServe(spec)
		if err != nil {
			return nil, nil, err
		}
		if sf != nil {
			svc = append(svc, sf)
			continue
		}
		k, err := faults.KillOnSave(spec, nil) // nil kill = real SIGKILL
		if err != nil {
			return nil, nil, err
		}
		if k == nil {
			return nil, nil, fmt.Errorf("unknown fault spec %q (want slowtenant:…, snapfail:…, or killsnap:…)", spec)
		}
		kills = append(kills, k)
	}
	var onSave func(key string, saves int)
	if len(kills) > 0 {
		onSave = func(key string, saves int) {
			for _, k := range kills {
				k(key, saves)
			}
		}
	}
	return svc, onSave, nil
}

func runServe(args []string) int {
	fs := flag.NewFlagSet("mayaserve serve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:0", "TCP listen address (port 0 picks a free port; see -addr-file)")
		addrFile      = fs.String("addr-file", "", "write the bound address to this file (atomic) for scripts")
		pidFile       = fs.String("pid-file", "", "write the daemon PID to this file (atomic)")
		dataDir       = fs.String("data-dir", "", "durable data directory: session journal + cell snapshots (required)")
		workers       = fs.Int("workers", 0, "concurrently running sessions (0 = GOMAXPROCS)")
		snapEvery     = fs.Uint64("snapshot-every", 0, "auto-snapshot cadence in simulator steps (0 = default; bounds crash loss)")
		tenantRunning = fs.Int("tenant-running", 0, "max running sessions per tenant (0 = default, <0 = unbounded)")
		tenantQueued  = fs.Int("tenant-queued", 0, "max queued sessions per tenant (0 = default, <0 = unbounded)")
		globalQueued  = fs.Int("global-queued", 0, "max queued sessions overall (0 = default, <0 = unbounded)")
		shedP99       = fs.Duration("shed-p99", 0, "shed admissions while p99 session latency exceeds this (0 disables)")
		deadline      = fs.Duration("deadline", 0, "default per-session run deadline (0 = none)")
		grace         = fs.Duration("grace", 30*time.Second, "drain window: how long the first signal waits for snapshots before hard-cancelling")
		jitterSeed    = fs.Uint64("jitter-seed", 1, "seed for the Retry-After jitter stream")
		faultSpecs    multiFlag
	)
	fs.Var(&faultSpecs, "fault", "inject a fault (repeatable): slowtenant:<tenant>:<dur> | snapfail:<substr>:<n> | killsnap:<substr>:<n>")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataDir == "" {
		return fail("-data-dir is required")
	}
	svcFaults, onSave, err := parseFaults(faultSpecs)
	if err != nil {
		return fail("%v", err)
	}
	s, err := serve.Open(serve.Config{
		Dir:           *dataDir,
		Workers:       *workers,
		SnapshotEvery: *snapEvery,
		Quotas: serve.Quotas{
			TenantRunning: *tenantRunning,
			TenantQueued:  *tenantQueued,
			GlobalQueued:  *globalQueued,
		},
		ShedP99:     *shedP99,
		RunDeadline: *deadline,
		JitterSeed:  *jitterSeed,
		Faults:      svcFaults,
		OnSave:      onSave,
		Logf:        logf,
	})
	if err != nil {
		return fail("%v", err)
	}

	// Two-stage shutdown: the first signal drains (stop admitting, fire
	// the snapshot trigger so running sessions persist exact state); the
	// grace deadline or a second signal hard-cancels.
	ctx, cancel := harness.NotifyShutdown(context.Background(), s.Trigger(), *grace,
		func(msg string) {
			logf("%s", msg)
			s.Drain()
		})
	defer cancel()
	s.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = s.Close()
		return fail("%v", err)
	}
	logf("serving on %s (data under %s)", ln.Addr(), *dataDir)
	if *addrFile != "" {
		if err := harness.WriteFileAtomic(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			_ = ln.Close()
			_ = s.Close()
			return fail("writing -addr-file: %v", err)
		}
	}
	if *pidFile != "" {
		pid := strconv.Itoa(os.Getpid())
		if err := harness.WriteFileAtomic(*pidFile, []byte(pid), 0o644); err != nil {
			_ = ln.Close()
			_ = s.Close()
			return fail("writing -pid-file: %v", err)
		}
	}

	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	code := 0
	select {
	case err := <-errCh:
		logf("http server: %v", err)
		code = 1
	case <-s.Done():
		// Workers parked: either the drain finished (exit clean, possibly
		// well before the grace deadline) or the context was hard-cancelled.
		if ctx.Err() != nil {
			logf("hard-cancelled; unfinished sessions resume on next start")
			code = 1
		} else {
			logf("drained; unfinished sessions resume on next start")
		}
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = httpSrv.Shutdown(shutCtx)
	shutCancel()
	if err := s.Close(); err != nil {
		logf("closing: %v", err)
		code = 1
	}
	return code
}

// specFlags registers the experiment-spec flag group shared by submit
// and swarm.
type specFlags struct {
	tenant     string
	design     string
	bench      string
	cores      int
	warmup     uint64
	roi        uint64
	seed       uint64
	deadlineMS int64
}

func addSpecFlags(fs *flag.FlagSet) *specFlags {
	sp := &specFlags{}
	fs.StringVar(&sp.tenant, "tenant", "", "tenant identifier for quota accounting (required for submit)")
	fs.StringVar(&sp.design, "design", "Maya", "cache design to simulate")
	fs.StringVar(&sp.bench, "bench", "mcf", "workload profile")
	fs.IntVar(&sp.cores, "cores", 1, "simulated core count")
	fs.Uint64Var(&sp.warmup, "warmup", 100_000, "warmup instructions per core")
	fs.Uint64Var(&sp.roi, "roi", 200_000, "measured instructions per core")
	fs.Uint64Var(&sp.seed, "seed", 1, "simulation seed")
	fs.Int64Var(&sp.deadlineMS, "deadline-ms", 0, "per-session run deadline in ms (0 = server default)")
	return sp
}

func (sp *specFlags) spec() serve.Spec {
	return serve.Spec{
		Tenant: sp.tenant, Design: sp.design, Bench: sp.bench,
		Cores: sp.cores, Warmup: sp.warmup, ROI: sp.roi, Seed: sp.seed,
		DeadlineMS: sp.deadlineMS,
	}
}

// submitOnce POSTs one spec. It returns the session ID, or a retry hint
// (>0) when the server shed the request, or a terminal error.
func submitOnce(base string, sp serve.Spec) (id string, retryAfter time.Duration, err error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return "", 0, err
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	switch resp.StatusCode {
	case http.StatusCreated:
		var created struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(payload, &created); err != nil || created.ID == "" {
			return "", 0, fmt.Errorf("bad admit response: %s", payload)
		}
		return created.ID, 0, nil
	case http.StatusTooManyRequests:
		var shed struct {
			RetryAfterMS int64 `json:"retry_after_ms"`
		}
		_ = json.Unmarshal(payload, &shed)
		ra := time.Duration(shed.RetryAfterMS) * time.Millisecond
		if ra <= 0 {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				ra = time.Duration(secs) * time.Second
			}
		}
		if ra <= 0 {
			ra = time.Second
		}
		return "", ra, nil
	case http.StatusServiceUnavailable:
		return "", 0, fmt.Errorf("server draining: %s", payload)
	default:
		return "", 0, fmt.Errorf("admit failed (%d): %s", resp.StatusCode, payload)
	}
}

// submitRetrying submits with shed-aware backoff: each 429 is retried
// after the server's (already jittered) Retry-After hint, capped so a
// pathological hint cannot stall the client forever.
func submitRetrying(base string, sp serve.Spec, retries int, maxWait time.Duration) (string, error) {
	for attempt := 0; ; attempt++ {
		id, retryAfter, err := submitOnce(base, sp)
		if err != nil {
			return "", err
		}
		if id != "" {
			return id, nil
		}
		if attempt >= retries {
			return "", fmt.Errorf("shed %d times; giving up", attempt+1)
		}
		if retryAfter > maxWait {
			retryAfter = maxWait
		}
		logf("shed; retrying in %s (%d/%d)", retryAfter.Round(time.Millisecond), attempt+1, retries)
		time.Sleep(retryAfter)
	}
}

func baseURL(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

func runSubmit(args []string) int {
	fs := flag.NewFlagSet("mayaserve submit", flag.ContinueOnError)
	addr := fs.String("addr", "", "server address (required)")
	retries := fs.Int("retries", 10, "how many 429 sheds to retry through")
	maxWait := fs.Duration("max-wait", 15*time.Second, "cap on a single Retry-After backoff")
	sp := addSpecFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" || sp.tenant == "" {
		return fail("-addr and -tenant are required")
	}
	id, err := submitRetrying(baseURL(*addr), sp.spec(), *retries, *maxWait)
	if err != nil {
		logf("%v", err)
		return 1
	}
	fmt.Println(id)
	return 0
}

// fetchSession GETs one session's state. Connection errors return
// (nil, err) so wait can ride through a daemon restart.
func fetchSession(base, id string) (*serve.SessionInfo, error) {
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("session %s: %d: %s", id, resp.StatusCode, payload)
	}
	var info serve.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// waitAll polls until every session is terminal (or the deadline). It
// tolerates connection failures — the daemon may be mid-restart — and
// only fails when a session reports a terminal error or time runs out.
func waitAll(base string, ids []string, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	pending := map[string]bool{}
	for _, id := range ids {
		pending[id] = true
	}
	code := 0
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			for _, id := range ids {
				if pending[id] {
					logf("timed out waiting for %s", id)
				}
			}
			return 1
		}
		for _, id := range ids {
			if !pending[id] {
				continue
			}
			info, err := fetchSession(base, id)
			if err != nil {
				// Daemon down or restarting: keep polling until the deadline.
				continue
			}
			switch info.State {
			case serve.StateDone:
				logf("%s done (%d/%d instructions)", id, info.Done, info.Total)
				delete(pending, id)
			case serve.StateFailed:
				logf("%s FAILED: %s", id, info.Error)
				delete(pending, id)
				code = 1
			}
		}
		if len(pending) > 0 {
			time.Sleep(100 * time.Millisecond)
		}
	}
	return code
}

func runWait(args []string) int {
	fs := flag.NewFlagSet("mayaserve wait", flag.ContinueOnError)
	addr := fs.String("addr", "", "server address (required)")
	timeout := fs.Duration("timeout", 10*time.Minute, "give up after this long")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" || fs.NArg() == 0 {
		return fail("usage: mayaserve wait -addr HOST:PORT ID...")
	}
	return waitAll(baseURL(*addr), fs.Args(), *timeout)
}

func runResult(args []string) int {
	fs := flag.NewFlagSet("mayaserve result", flag.ContinueOnError)
	addr := fs.String("addr", "", "server address (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" || fs.NArg() != 1 {
		return fail("usage: mayaserve result -addr HOST:PORT ID")
	}
	resp, err := http.Get(baseURL(*addr) + "/v1/sessions/" + fs.Arg(0) + "/result")
	if err != nil {
		logf("%v", err)
		return 1
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		logf("%v", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		logf("result %s: %d: %s", fs.Arg(0), resp.StatusCode, payload)
		return 1
	}
	if _, err := os.Stdout.Write(payload); err != nil {
		logf("%v", err)
		return 1
	}
	return 0
}

// runSwarm is the multi-tenant load client: -tenants T each submit -per
// sessions (seeds varied per session), all with shed-aware backoff, then
// wait for every terminal state and print a TSV summary.
func runSwarm(args []string) int {
	fs := flag.NewFlagSet("mayaserve swarm", flag.ContinueOnError)
	addr := fs.String("addr", "", "server address (required)")
	tenants := fs.Int("tenants", 3, "number of synthetic tenants")
	per := fs.Int("per", 2, "sessions per tenant")
	retries := fs.Int("retries", 20, "how many 429 sheds to retry through, per session")
	maxWait := fs.Duration("max-wait", 15*time.Second, "cap on a single Retry-After backoff")
	timeout := fs.Duration("timeout", 10*time.Minute, "give up after this long")
	sp := addSpecFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" {
		return fail("-addr is required")
	}
	if *tenants < 1 || *per < 1 {
		return fail("-tenants and -per must be >= 1")
	}
	base := baseURL(*addr)
	var ids []string
	for t := 0; t < *tenants; t++ {
		for k := 0; k < *per; k++ {
			spec := sp.spec()
			spec.Tenant = fmt.Sprintf("tenant%02d", t)
			spec.Seed = sp.seed + uint64(t**per+k)
			id, err := submitRetrying(base, spec, *retries, *maxWait)
			if err != nil {
				logf("submitting for %s: %v", spec.Tenant, err)
				return 1
			}
			logf("%s admitted as %s", spec.Tenant, id)
			ids = append(ids, id)
		}
	}
	code := waitAll(base, ids, *timeout)
	for _, id := range ids {
		info, err := fetchSession(base, id)
		if err != nil {
			fmt.Printf("%s\tUNKNOWN\t%v\n", id, err)
			code = 1
			continue
		}
		fmt.Printf("%s\t%s\t%s\n", id, info.Tenant, info.State)
	}
	return code
}
