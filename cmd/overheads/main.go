// Command overheads prints the paper's cost tables: the exact storage
// accounting of Table VIII, the P-CACTI-substitute energy/power/area
// estimates of Table IX, and the Table X summary combining security
// (analytical model), storage, and optionally simulated performance.
//
// Usage:
//
//	overheads -table storage|energy|summary|all [-perf]
package main

import (
	"flag"
	"fmt"
	"os"

	"mayacache/internal/analytic"
	"mayacache/internal/experiments"
	"mayacache/internal/metrics"
	"mayacache/internal/power"
	"mayacache/internal/report"
	"mayacache/internal/trace"
)

func main() {
	var (
		table  = flag.String("table", "all", "storage|energy|summary|all")
		perf   = flag.Bool("perf", false, "simulate SPEC homogeneous performance for Table X (slow)")
		warmup = flag.Uint64("warmup", 2_000_000, "warmup instructions per core for -perf")
		roi    = flag.Uint64("roi", 800_000, "ROI instructions per core for -perf")
		csv    = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	emit := func(t *report.Table) {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}

	switch *table {
	case "storage":
		storageTable(emit)
	case "energy":
		energyTable(emit)
	case "summary":
		summaryTable(emit, *perf, *warmup, *roi)
	case "all":
		storageTable(emit)
		energyTable(emit)
		summaryTable(emit, *perf, *warmup, *roi)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}

func storageTable(emit func(*report.Table)) {
	t := report.NewTable("Table VIII: storage overheads",
		"configuration", "Baseline", "Mirage", "Maya")
	rows := []struct {
		label string
		get   func(power.Storage) string
	}{
		{"Tag bits", func(s power.Storage) string { return fmt.Sprintf("%d", s.TagBits) }},
		{"Coherence bits", func(s power.Storage) string { return fmt.Sprintf("%d", s.CoherenceBits) }},
		{"Priority bits", func(s power.Storage) string { return fmt.Sprintf("%d", s.PriorityBits) }},
		{"FPTR bits", func(s power.Storage) string { return fmt.Sprintf("%d", s.FPTRBits) }},
		{"SDID bits", func(s power.Storage) string { return fmt.Sprintf("%d", s.SDIDBits) }},
		{"Tag entry bits", func(s power.Storage) string { return fmt.Sprintf("%d", s.TagEntryBits) }},
		{"Tag entries", func(s power.Storage) string { return fmt.Sprintf("%d", s.TagEntries) }},
		{"Tag store KB", func(s power.Storage) string { return fmt.Sprintf("%.0f", s.TagStoreKB) }},
		{"Data entry bits", func(s power.Storage) string { return fmt.Sprintf("%d", s.DataEntryBits) }},
		{"Data entries", func(s power.Storage) string { return fmt.Sprintf("%d", s.DataEntries) }},
		{"Data store KB", func(s power.Storage) string { return fmt.Sprintf("%.0f", s.DataStoreKB) }},
		{"Total KB", func(s power.Storage) string { return fmt.Sprintf("%.0f", s.TotalKB) }},
		{"Overhead vs baseline", func(s power.Storage) string { return fmt.Sprintf("%+.1f%%", s.OverheadVsBaseline()*100) }},
	}
	base, mir, maya := power.Account(power.Baseline), power.Account(power.Mirage), power.Account(power.Maya)
	for _, r := range rows {
		t.AddRow(r.label, r.get(base), r.get(mir), r.get(maya))
	}
	emit(t)
}

func energyTable(emit func(*report.Table)) {
	t := report.NewTable("Table IX: energy, power, and area (P-CACTI-substitute model, 7nm)",
		"design", "read energy/access (nJ)", "write energy/access (nJ)", "static power (mW)", "area (mm^2)")
	for _, d := range []power.Design{power.Baseline, power.Mirage, power.Maya, power.MayaISO} {
		c := power.Estimate(d)
		t.AddRow(string(d), c.ReadEnergyNJ, c.WriteEnergyNJ, c.StaticPowerMW, c.AreaMM2)
	}
	emit(t)
}

// securityFor returns the analytical installs-per-SAE for each Table X
// design.
func securityFor(d power.Design) string {
	var T float64
	var ways int
	switch d {
	case power.Maya:
		T, ways = 9, 15
	case power.Mirage:
		T, ways = 8, 14
	case power.MirageLite:
		T, ways = 8, 13
	case power.MayaISO:
		T, ways = 12, 18
	default:
		return "none (conventional)"
	}
	dist, err := analytic.Solve(T)
	if err != nil {
		return "error"
	}
	return analytic.FormatInstalls(dist.InstallsPerSAE(ways))
}

func summaryTable(emit func(*report.Table), perf bool, warmup, roi uint64) {
	t := report.NewTable("Table X: security, storage, performance summary",
		"design", "security (installs/SAE)", "storage", "performance")
	designs := []struct {
		p power.Design
		e experiments.Design
	}{
		{power.Maya, experiments.DesignMaya},
		{power.Mirage, experiments.DesignMirage},
		{power.MirageLite, experiments.DesignMirageLite},
		{power.MayaISO, experiments.DesignMayaISO},
	}
	perfCol := map[power.Design]string{}
	if perf {
		sc := experiments.Scale{WarmupInstr: warmup, ROIInstr: roi, Seed: 1, Parallel: true}
		benches := trace.SpecMemIntensive()
		for _, d := range designs {
			var norms []float64
			for _, b := range benches {
				mix := []string{b, b, b, b, b, b, b, b}
				base := experiments.RunMixDesign(b, mix, experiments.DesignBaseline, sc)
				res := experiments.RunMixDesign(b, mix, d.e, sc)
				norms = append(norms, res.WS/base.WS)
			}
			gm, _ := metrics.GeoMean(norms)
			perfCol[d.p] = fmt.Sprintf("%+.2f%%", (gm-1)*100)
		}
	}
	for _, d := range designs {
		st := power.Account(d.p)
		perfStr, ok := perfCol[d.p]
		if !ok {
			perfStr = "(run with -perf)"
		}
		t.AddRow(string(d.p), securityFor(d.p),
			fmt.Sprintf("%+.1f%%", st.OverheadVsBaseline()*100), perfStr)
	}
	emit(t)
}
