module mayacache

go 1.22
