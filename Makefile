# Maya cache reproduction — build/verify targets.
#
# `make ci` is the tier-1 gate: everything a PR must keep green.

GO ?= go

.PHONY: all build test vet check race fuzz-smoke ci clean

all: build

# build compiles every package and command.
build:
	$(GO) build ./...

# test runs the full unit/integration suite.
test:
	$(GO) test ./...

# vet runs go vet plus mayavet, the simulator-specific analyzers
# (randsource, maporder, uncheckederr, narrowcast — see internal/vet).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/mayavet ./...

# check re-runs the suite with the mayacheck build tag: the hot cache
# structures self-verify their FPTR/RPTR bijection, occupancy conservation,
# and ball-count invariants on every run.
check:
	$(GO) test -tags mayacheck ./internal/core/... ./internal/mirage/... ./internal/buckets/... ./internal/cachesim/...

# race runs the race detector over the multi-core simulator paths.
race:
	$(GO) test -race ./internal/cachesim/... ./internal/core/... ./internal/experiments/...

# fuzz-smoke gives each fuzz target a short budget — enough to catch
# regressions in the PRINCE round-trip and trace-parser robustness without
# stalling CI. Corpus crashers live under testdata/fuzz and replay in
# normal `go test` runs.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzEncryptDecryptRoundTrip -fuzztime=10s ./internal/prince/
	$(GO) test -run=^$$ -fuzz=FuzzReadEvents$$ -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzReadEventsRoundTrip -fuzztime=10s ./internal/trace/

# ci is the tier-1 verification gate.
ci: build test vet check race

clean:
	$(GO) clean ./...
