# Maya cache reproduction — build/verify targets.
#
# `make ci` is the tier-1 gate: everything a PR must keep green.

GO ?= go

.PHONY: all build test vet check race e2e bench fuzz-smoke ci clean

all: build

# build compiles every package and command.
build:
	$(GO) build ./...

# test runs the full unit/integration suite.
test:
	$(GO) test ./...

# vet runs go vet plus mayavet, the simulator-specific analyzers
# (randsource, maporder, uncheckederr, narrowcast, plus the
# interprocedural seedflow, snapshotfields, goroutinectx, atomicmix — see
# internal/vet). Extra flags pass through VETFLAGS, e.g.
# `make vet VETFLAGS='-only seedflow -format json'`.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/mayavet $(VETFLAGS) ./...

# check re-runs the suite with the mayacheck build tag: the hot cache
# structures self-verify their FPTR/RPTR bijection, occupancy conservation,
# and ball-count invariants on every run, and the fault-injection tests
# prove the audits fire on corrupted tag stores.
check:
	$(GO) test -tags mayacheck ./internal/core/... ./internal/mirage/... ./internal/buckets/... ./internal/cachesim/... ./internal/faults/...

# race runs the race detector over the multi-core simulator paths, the
# concurrent sweep harness, and the shard-parallel Monte-Carlo engine
# (scheduling-invariance and mid-run cancellation hammers; -short keeps
# the sharded model/attack tests at CI scale).
race:
	$(GO) test -race ./internal/cachesim/... ./internal/core/... ./internal/experiments/... ./internal/harness/... ./internal/faults/... ./internal/snapshot/...
	$(GO) test -race ./internal/dist/
	$(GO) test -race ./internal/vet/ ./cmd/mayavet/
	$(GO) test -race -short ./internal/mc/... ./internal/pprofutil/...
	$(GO) test -race -short -run 'Sharded' ./internal/buckets/
	$(GO) test -race -short -run 'Trials|MedianDistinguishWorker|MedianDistinguishStream|EvictionSetTrials|ReplacementPredictabilityCtx' ./internal/attack/

# e2e exercises mayasim end to end: fault isolation (one injected
# panicking cell, nonzero exit, FAILED row), checkpoint resume
# (byte-identical tables), and SIGKILL-mid-ROI snapshot resume
# (bit-exact continuation from durable cell state). ci.sh runs the same
# smoke inline.
e2e:
	@TMP=$$(mktemp -d); trap 'rm -rf "$$TMP"' EXIT; \
	$(GO) build -o "$$TMP/mayasim" ./cmd/mayasim; \
	if "$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    -checkpoint "$$TMP/ck.jsonl" -fault panic:cores=8 \
	    > "$$TMP/fault.out" 2> "$$TMP/fault.err"; then \
	  echo "e2e: fault-injected sweep exited zero" >&2; exit 1; fi; \
	grep -q FAILED "$$TMP/fault.out"; \
	grep -q "FAILURE SUMMARY" "$$TMP/fault.err"; \
	"$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    -checkpoint "$$TMP/ck.jsonl" > "$$TMP/resume.out"; \
	"$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    > "$$TMP/fresh.out"; \
	cmp "$$TMP/resume.out" "$$TMP/fresh.out"; \
	echo "e2e: resume byte-identical"; \
	if "$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    -checkpoint "$$TMP/kill.ckpt" -snapshot-dir "$$TMP/snaps" -snapshot-every 4096 \
	    -fault killsnap:cores=16:4 > "$$TMP/kill.out" 2> "$$TMP/kill.err"; then \
	  echo "e2e: killsnap run survived its own SIGKILL" >&2; exit 1; fi; \
	test -n "$$(ls "$$TMP/snaps")"; \
	"$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    -checkpoint "$$TMP/kill.ckpt" -snapshot-dir "$$TMP/snaps" > "$$TMP/killresume.out"; \
	cmp "$$TMP/killresume.out" "$$TMP/fresh.out"; \
	test -z "$$(ls "$$TMP/snaps")"; \
	echo "e2e: SIGKILL resume bit-exact"; \
	$(GO) build -o "$$TMP/mayafleet" ./cmd/mayafleet; \
	"$$TMP/mayafleet" serial -benches mcf,lbm -cores 2 -warmup 30000 \
	    -roi 15000 -seeds 2 > "$$TMP/fleet-serial.tsv"; \
	"$$TMP/mayafleet" coordinate -inproc 3 -benches mcf,lbm -cores 2 \
	    -warmup 30000 -roi 15000 -seeds 2 -lease 2s -heartbeat 100ms \
	    -snapshot-every 4096 -fault distkill:bench=mcf:2 \
	    -fault distdrop:bench=lbm:1 -fault distdelay:bench=:5ms \
	    > "$$TMP/fleet-chaos.tsv" 2> "$$TMP/fleet-chaos.err"; \
	cmp "$$TMP/fleet-serial.tsv" "$$TMP/fleet-chaos.tsv"; \
	grep -q "injected kill" "$$TMP/fleet-chaos.err"; \
	grep -q "migrating cell" "$$TMP/fleet-chaos.err"; \
	echo "e2e: fleet chaos run byte-identical to serial"

# bench runs the continuous benchmark suite in quick mode and writes
# BENCH.json: per-design LLC access-path microbenchmarks (ns/access,
# allocs/access, B/access), a 4-core macro mix (events/sec), and the
# shard-parallel Monte-Carlo security micro (iters/sec, serial vs 8x8,
# with the measured speedup). The
# numbers are pinned and seed-deterministic, so comparing BENCH.json
# across commits on the same machine tracks simulator performance; the
# run also re-exercises the zero-alloc and golden-fixture guards via the
# bench package's init paths. Drop -quick for the full-length suite.
bench:
	$(GO) run ./cmd/mayabench -quick -out BENCH.json

# fuzz-smoke gives each fuzz target a short budget — enough to catch
# regressions in the PRINCE round-trip and trace-parser robustness without
# stalling CI. Corpus crashers live under testdata/fuzz and replay in
# normal `go test` runs.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzEncryptDecryptRoundTrip -fuzztime=10s ./internal/prince/
	$(GO) test -run=^$$ -fuzz=FuzzReadEvents$$ -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzReadEventsRoundTrip -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzSnapshotDecode -fuzztime=10s ./internal/snapshot/

# ci is the tier-1 verification gate.
ci: build test vet check race e2e bench

clean:
	$(GO) clean ./...
