# Maya cache reproduction — build/verify targets.
#
# `make ci` is the tier-1 gate: everything a PR must keep green.

GO ?= go

.PHONY: all build test vet check race e2e bench bench-profile fuzz-smoke ci clean

all: build

# build compiles every package and command.
build:
	$(GO) build ./...

# test runs the full unit/integration suite.
test:
	$(GO) test ./...

# vet runs go vet plus mayavet, the simulator-specific analyzers
# (randsource, maporder, uncheckederr, narrowcast, plus the
# interprocedural seedflow, snapshotfields, goroutinectx, atomicmix — see
# internal/vet). Extra flags pass through VETFLAGS, e.g.
# `make vet VETFLAGS='-only seedflow -format json'`.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/mayavet $(VETFLAGS) ./...

# check re-runs the suite with the mayacheck build tag: the hot cache
# structures self-verify their FPTR/RPTR bijection, occupancy conservation,
# and ball-count invariants on every run, and the fault-injection tests
# prove the audits fire on corrupted tag stores.
check:
	$(GO) test -tags mayacheck ./internal/core/... ./internal/mirage/... ./internal/buckets/... ./internal/cachesim/... ./internal/faults/...

# race runs the race detector over the multi-core simulator paths, the
# concurrent sweep harness, and the shard-parallel Monte-Carlo engine
# (scheduling-invariance and mid-run cancellation hammers; -short keeps
# the sharded model/attack tests at CI scale).
race:
	$(GO) test -race ./internal/cachesim/... ./internal/core/... ./internal/experiments/... ./internal/harness/... ./internal/faults/... ./internal/snapshot/...
	$(GO) test -race ./internal/dist/
	$(GO) test -race -cover ./internal/serve/
	$(GO) test -race ./internal/vet/ ./cmd/mayavet/
	$(GO) test -race -short ./internal/mc/... ./internal/pprofutil/...
	$(GO) test -race -short -run 'Sharded' ./internal/buckets/
	$(GO) test -race -short -run 'Trials|MedianDistinguishWorker|MedianDistinguishStream|EvictionSetTrials|ReplacementPredictabilityCtx' ./internal/attack/

# e2e exercises the CLIs end to end: mayasim fault isolation (one
# injected panicking cell, nonzero exit, FAILED row), checkpoint resume
# (byte-identical tables), SIGKILL-mid-ROI snapshot resume (bit-exact
# continuation from durable cell state), the mayafleet chaos fabric, and
# the mayaserve session daemon's kill -9 recovery (a daemon SIGKILLed
# mid-ROI restarts and completes every acknowledged session with
# byte-identical results). ci.sh runs the same smoke inline.
e2e:
	@TMP=$$(mktemp -d); trap 'rm -rf "$$TMP"' EXIT; \
	$(GO) build -o "$$TMP/mayasim" ./cmd/mayasim; \
	if "$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    -checkpoint "$$TMP/ck.jsonl" -fault panic:cores=8 \
	    > "$$TMP/fault.out" 2> "$$TMP/fault.err"; then \
	  echo "e2e: fault-injected sweep exited zero" >&2; exit 1; fi; \
	grep -q FAILED "$$TMP/fault.out"; \
	grep -q "FAILURE SUMMARY" "$$TMP/fault.err"; \
	"$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    -checkpoint "$$TMP/ck.jsonl" > "$$TMP/resume.out"; \
	"$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    > "$$TMP/fresh.out"; \
	cmp "$$TMP/resume.out" "$$TMP/fresh.out"; \
	echo "e2e: resume byte-identical"; \
	if "$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    -checkpoint "$$TMP/kill.ckpt" -snapshot-dir "$$TMP/snaps" -snapshot-every 4096 \
	    -fault killsnap:cores=16:4 > "$$TMP/kill.out" 2> "$$TMP/kill.err"; then \
	  echo "e2e: killsnap run survived its own SIGKILL" >&2; exit 1; fi; \
	test -n "$$(ls "$$TMP/snaps")"; \
	"$$TMP/mayasim" -experiment cores -warmup 60000 -roi 30000 -serial \
	    -checkpoint "$$TMP/kill.ckpt" -snapshot-dir "$$TMP/snaps" > "$$TMP/killresume.out"; \
	cmp "$$TMP/killresume.out" "$$TMP/fresh.out"; \
	test -z "$$(ls "$$TMP/snaps")"; \
	echo "e2e: SIGKILL resume bit-exact"; \
	$(GO) build -o "$$TMP/mayafleet" ./cmd/mayafleet; \
	"$$TMP/mayafleet" serial -benches mcf,lbm -cores 2 -warmup 30000 \
	    -roi 15000 -seeds 2 > "$$TMP/fleet-serial.tsv"; \
	"$$TMP/mayafleet" coordinate -inproc 3 -benches mcf,lbm -cores 2 \
	    -warmup 30000 -roi 15000 -seeds 2 -lease 2s -heartbeat 100ms \
	    -snapshot-every 4096 -fault distkill:bench=mcf:2 \
	    -fault distdrop:bench=lbm:1 -fault distdelay:bench=:5ms \
	    > "$$TMP/fleet-chaos.tsv" 2> "$$TMP/fleet-chaos.err"; \
	cmp "$$TMP/fleet-serial.tsv" "$$TMP/fleet-chaos.tsv"; \
	grep -q "injected kill" "$$TMP/fleet-chaos.err"; \
	grep -q "migrating cell" "$$TMP/fleet-chaos.err"; \
	echo "e2e: fleet chaos run byte-identical to serial"; \
	$(GO) build -o "$$TMP/mayaserve" ./cmd/mayaserve; \
	"$$TMP/mayaserve" serve -data-dir "$$TMP/sv-ref" -addr-file "$$TMP/sv.addr" \
	    -workers 3 -snapshot-every 4096 2>/dev/null & SRV=$$!; \
	while [ ! -s "$$TMP/sv.addr" ]; do sleep 0.1; done; A=$$(cat "$$TMP/sv.addr"); \
	for t in acme beta acme; do "$$TMP/mayaserve" submit -addr "$$A" -tenant $$t \
	    -cores 1 -warmup 20000 -roi 40000 -seed 7; done > "$$TMP/sv.ids"; \
	"$$TMP/mayaserve" wait -addr "$$A" -timeout 120s $$(cat "$$TMP/sv.ids") 2>/dev/null; \
	for id in $$(cat "$$TMP/sv.ids"); do \
	    "$$TMP/mayaserve" result -addr "$$A" $$id > "$$TMP/sv-ref-$$id.json"; done; \
	kill -TERM $$SRV; wait $$SRV; \
	rm -f "$$TMP/sv.addr"; \
	"$$TMP/mayaserve" serve -data-dir "$$TMP/sv-chaos" -addr-file "$$TMP/sv.addr" \
	    -workers 3 -snapshot-every 4096 -fault killsnap:s000003:2 2>/dev/null & SRV=$$!; \
	while [ ! -s "$$TMP/sv.addr" ]; do sleep 0.1; done; A=$$(cat "$$TMP/sv.addr"); \
	for t in acme beta acme; do "$$TMP/mayaserve" submit -addr "$$A" -tenant $$t \
	    -cores 1 -warmup 20000 -roi 40000 -seed 7; done > "$$TMP/sv.ids2"; \
	st=0; wait $$SRV || st=$$?; \
	if [ "$$st" -ne 137 ]; then echo "e2e: killsnap daemon exited $$st, want 137" >&2; exit 1; fi; \
	rm -f "$$TMP/sv.addr"; \
	"$$TMP/mayaserve" serve -data-dir "$$TMP/sv-chaos" -addr-file "$$TMP/sv.addr" \
	    -workers 3 -snapshot-every 4096 2>/dev/null & SRV=$$!; \
	while [ ! -s "$$TMP/sv.addr" ]; do sleep 0.1; done; A=$$(cat "$$TMP/sv.addr"); \
	"$$TMP/mayaserve" wait -addr "$$A" -timeout 120s $$(cat "$$TMP/sv.ids2") 2>/dev/null; \
	for id in $$(cat "$$TMP/sv.ids2"); do \
	    "$$TMP/mayaserve" result -addr "$$A" $$id > "$$TMP/sv-got-$$id.json"; \
	    cmp "$$TMP/sv-ref-$$id.json" "$$TMP/sv-got-$$id.json"; done; \
	kill -TERM $$SRV; wait $$SRV; \
	echo "e2e: mayaserve kill -9 recovery byte-identical"

# bench runs the continuous benchmark suite in quick mode and writes
# BENCH.json: per-design LLC access-path microbenchmarks (ns/access,
# allocs/access, B/access), a 4-core macro mix (events/sec), the
# shard-parallel Monte-Carlo security micro (iters/sec, serial vs 8x8,
# with the measured speedup), and the session-service load scenarios
# (admission/turnaround latency percentiles, sessions/sec, shed rate). The
# numbers are pinned and seed-deterministic, so comparing BENCH.json
# across commits on the same machine tracks simulator performance; the
# run also re-exercises the zero-alloc and golden-fixture guards via the
# bench package's init paths. Drop -quick for the full-length suite.
bench:
	$(GO) run ./cmd/mayabench -quick -out BENCH.json

# bench-profile runs just the micro tier (the LLC access path, both the
# fast-hash overhead rows and the real-PRINCE memoized rows) under the CPU
# profiler and prints the ten hottest functions by flat time — the
# shortest loop for "where did the ns/access go".
bench-profile:
	@TMP=$$(mktemp -d); trap 'rm -rf "$$TMP"' EXIT; \
	$(GO) run ./cmd/mayabench -quick -micro -cpuprofile "$$TMP/micro.pprof" \
	    -out "$$TMP/BENCH.json"; \
	$(GO) tool pprof -top -nodecount=10 "$$TMP/micro.pprof"

# fuzz-smoke gives each fuzz target a short budget — enough to catch
# regressions in the PRINCE round-trip and trace-parser robustness without
# stalling CI. Corpus crashers live under testdata/fuzz and replay in
# normal `go test` runs.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzEncryptDecryptRoundTrip -fuzztime=10s ./internal/prince/
	$(GO) test -run=^$$ -fuzz=FuzzReadEvents$$ -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzReadEventsRoundTrip -fuzztime=10s ./internal/trace/
	$(GO) test -run=^$$ -fuzz=FuzzSnapshotDecode -fuzztime=10s ./internal/snapshot/

# ci is the tier-1 verification gate.
ci: build test vet check race e2e bench

clean:
	$(GO) clean ./...
