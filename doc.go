// Package mayacache is a from-scratch Go reproduction of "The Maya Cache:
// A Storage-efficient and Secure Fully-associative Last-level Cache"
// (Bhatla, Navneet & Panda, ISCA 2024).
//
// The public API lives in the maya subpackage; the cmd tools drive the
// paper's experiments; bench_test.go in this directory regenerates every
// table and figure at reduced scale. See README.md, DESIGN.md, and
// EXPERIMENTS.md.
package mayacache
